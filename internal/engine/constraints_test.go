package engine

import (
	"bytes"
	"os"
	"regexp"
	"testing"

	"spes/internal/corpus"
	"spes/internal/fault"
	"spes/internal/schema"
	"spes/internal/store"
)

func constraintPairs() []Pair {
	var out []Pair
	for _, p := range corpus.ConstraintPairs() {
		out = append(out, Pair{ID: p.ID, SQL1: p.SQL1, SQL2: p.SQL2})
	}
	return out
}

// TestConstraintAxiomsPanicDegrades injects a certain panic at the
// constraint-axioms fault site. The site fires inside every constrained
// table scan during verification, so every constraint-tier pair must come
// back not-proved with the panic recovered — never equivalent, because a
// panic mid-axiom-construction unwinds the whole pair before any
// obligation that could have used a partial axiom set is discharged.
func TestConstraintAxiomsPanicDegrades(t *testing.T) {
	if err := fault.Enable(fault.Config{
		Seed: 11, PerMille: 1000,
		Sites: []fault.Site{fault.ConstraintAxioms},
		Kinds: []fault.Kind{fault.KindPanic},
	}); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()

	results, stats := VerifyBatch(corpus.ConstraintCatalog(), constraintPairs(), Options{Workers: 2})
	for _, r := range results {
		if r.Verdict != NotProved {
			t.Errorf("%s: verdict %s under axiom panics, want not-proved", r.ID, r.Verdict)
		}
	}
	if stats.Panics == 0 {
		t.Error("no panics recovered; the fault site never fired")
	}
	if stats.Equivalent != 0 || stats.Refuted != 0 {
		t.Errorf("stats = %+v, want zero equivalent/refuted under axiom panics", stats)
	}
}

// TestConstraintAxiomsCancelSound injects a certain cancel at the same
// site. Cancel makes the verifier skip ALL axioms for a scan — never a
// partial set — which only weakens obligation premises. Pairs whose proof
// rides on normalization rewrites may legitimately still prove; pairs
// needing the axioms degrade to not-proved. What must never happen is a
// refutation or a wrong verdict.
func TestConstraintAxiomsCancelSound(t *testing.T) {
	if err := fault.Enable(fault.Config{
		Seed: 12, PerMille: 1000,
		Sites: []fault.Site{fault.ConstraintAxioms},
		Kinds: []fault.Kind{fault.KindCancel},
	}); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()

	results, stats := VerifyBatch(corpus.ConstraintCatalog(), constraintPairs(), Options{Workers: 2})
	for _, r := range results {
		if r.Verdict != Equivalent && r.Verdict != NotProved {
			t.Errorf("%s: verdict %s under axiom cancels, want equivalent or not-proved", r.ID, r.Verdict)
		}
	}
	if stats.Refuted != 0 {
		t.Errorf("refuted %d pairs of a ground-truth-equivalent tier under cancels", stats.Refuted)
	}
}

// TestConstraintStoreCrossContamination drives the constraint tier through
// ONE durable store directory under both catalogs, with a restart between
// every run. Verdicts proved under the constraint catalog must not leak
// into the constraint-free run (its digest namespaces every key), and a
// warm restart under the matching digest must be answered from the store.
func TestConstraintStoreCrossContamination(t *testing.T) {
	dir := t.TempDir()
	pairs := constraintPairs()

	st1, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res1, _ := VerifyBatch(corpus.ConstraintCatalog(), pairs, Options{Workers: 2, Store: st1})
	for _, r := range res1 {
		if r.Verdict != Equivalent {
			t.Fatalf("%s: cold constrained run got %s (%s), want equivalent", r.ID, r.Verdict, r.Reason)
		}
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart against the SAME log, now with the constraint-free catalog:
	// every stored verdict is keyed under the constraint digest, so none
	// may be served here — the pairs must fail exactly as on a cold,
	// storeless run.
	st2, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ss := st2.Snapshot(); ss.Records == 0 {
		t.Fatal("constrained run persisted no records; the contamination check is vacuous")
	}
	res2, stats2 := VerifyBatch(corpus.Catalog(), pairs, Options{Workers: 2, Store: st2})
	for _, r := range res2 {
		if r.Verdict != NotProved {
			t.Errorf("%s: constraint-free run over the constrained store got %s, want not-proved", r.ID, r.Verdict)
		}
	}
	if stats2.StoreHits != 0 {
		t.Errorf("constraint-free run hit the store %d times; digest namespacing leaked", stats2.StoreHits)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart once more under the matching digest: warm, equivalent, and
	// at least partly answered from the store.
	st3, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	res3, stats3 := VerifyBatch(corpus.ConstraintCatalog(), pairs, Options{Workers: 2, Store: st3})
	for _, r := range res3 {
		if r.Verdict != Equivalent {
			t.Errorf("%s: warm constrained run got %s, want equivalent", r.ID, r.Verdict)
		}
	}
	if stats3.StoreHits == 0 {
		t.Error("warm restart under the matching digest never hit the store")
	}
}

// parityCatalog is a catalog with NO constraints of any kind — no primary
// keys, no NOT NULLs, no UNIQUEs, no foreign keys. Its digest is empty by
// definition, which must make the entire digest machinery vanish:
// undecorated keys, byte-identical store records.
func parityCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	if err := cat.AddTable(&schema.Table{
		Name: "T",
		Columns: []schema.Column{
			{Name: "A", Type: schema.Int},
			{Name: "B", Type: schema.Int},
			{Name: "C", Type: schema.String},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func parityPairs() []Pair {
	return []Pair{
		{ID: "par-1",
			SQL1: "SELECT A FROM T WHERE A > 1 AND B > 2",
			SQL2: "SELECT A FROM T WHERE B > 2 AND A > 1"},
		{ID: "par-2",
			SQL1: "SELECT A, B FROM T WHERE A = 3",
			SQL2: "SELECT A, B FROM T WHERE 3 = A"},
		{ID: "par-3",
			SQL1: "SELECT B FROM T WHERE A > 0 UNION ALL SELECT B FROM T WHERE A > 0",
			SQL2: "SELECT B FROM T WHERE 0 < A UNION ALL SELECT B FROM T WHERE A > 0"},
	}
}

// digestPrefixRe matches the "c<digest>:" decoration constraint-aware
// builds prepend to cache and store keys. A constraint-free catalog must
// never produce it anywhere in the durable log.
var digestPrefixRe = regexp.MustCompile(`c[0-9a-f]{16}:`)

// TestEmptyConstraintSetParity pins the zero-constraint fast path: a
// catalog declaring nothing digests to "", its store records carry
// undecorated keys (byte-identical to builds predating constraint
// support), two cold runs write byte-identical logs, and a warm restart
// reproduces the verdicts from the store without growing the log.
func TestEmptyConstraintSetParity(t *testing.T) {
	cat := parityCatalog(t)
	if d := cat.ConstraintDigest(); d != "" {
		t.Fatalf("constraint-free catalog digests to %q, want empty", d)
	}
	pairs := parityPairs()

	runInto := func(dir string) ([]Result, BatchStats) {
		st, err := store.OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Workers: 1 makes the append order deterministic so the two cold
		// logs can be compared byte for byte.
		res, stats := VerifyBatch(cat, pairs, Options{Workers: 1, Store: st})
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return res, stats
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	resA, _ := runInto(dirA)
	resB, _ := runInto(dirB)
	for i := range resA {
		if resA[i].Verdict != Equivalent {
			t.Errorf("%s: got %s (%s), want equivalent", resA[i].ID, resA[i].Verdict, resA[i].Reason)
		}
		if resA[i].Verdict != resB[i].Verdict {
			t.Errorf("%s: verdicts differ across identical cold runs: %s vs %s",
				resA[i].ID, resA[i].Verdict, resB[i].Verdict)
		}
	}

	logA, err := os.ReadFile(dirA + "/spes-verdicts.log")
	if err != nil {
		t.Fatal(err)
	}
	logB, err := os.ReadFile(dirB + "/spes-verdicts.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(logA) == 0 {
		t.Fatal("cold run persisted nothing; the parity pin is vacuous")
	}
	if !bytes.Equal(logA, logB) {
		t.Error("two cold runs with an empty constraint set wrote different store bytes")
	}
	if loc := digestPrefixRe.Find(logA); loc != nil {
		t.Errorf("store log for a constraint-free catalog contains a digest-prefixed key %q", loc)
	}

	// Warm restart: same dir, same pairs — verdicts identical, obligations
	// answered from the store, and the log must not grow (nothing new to
	// persist).
	resW, statsW := runInto(dirA)
	for i := range resW {
		if resW[i].Verdict != resA[i].Verdict {
			t.Errorf("%s: warm verdict %s differs from cold %s", resW[i].ID, resW[i].Verdict, resA[i].Verdict)
		}
	}
	if statsW.StoreHits == 0 {
		t.Error("warm restart never hit the store")
	}
	logW, err := os.ReadFile(dirA + "/spes-verdicts.log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(logA, logW) {
		t.Errorf("warm restart changed the store log (%d -> %d bytes)", len(logA), len(logW))
	}
}
