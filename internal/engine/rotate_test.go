package engine

import (
	"context"
	"sync/atomic"
	"testing"

	"spes/internal/corpus"
	"spes/internal/store"
)

// rotationHighWater derives a high-water mark that forces several
// rotations on the given workload: an unbounded reference run measures the
// workload's full term-DAG size, and the mark is set well below it. The
// reference results double as the parity baseline.
func rotationHighWater(t *testing.T, pairs []Pair) ([]Result, BatchStats, int) {
	t.Helper()
	base, baseStats := VerifyBatch(corpus.Catalog(), pairs, Options{Workers: 1})
	if baseStats.TermNodes == 0 {
		t.Fatal("sanity: unbounded run interned no terms")
	}
	hw := int(baseStats.TermNodes) / 6
	if hw < 64 {
		hw = 64
	}
	return base, baseStats, hw
}

// TestForcedRotationParity is the rotation acceptance suite: a batch run
// with a high-water mark low enough to force several mid-batch epoch
// rotations returns verdicts identical to the unbounded run, and the
// final current-epoch DAG is smaller than the unbounded one.
func TestForcedRotationParity(t *testing.T) {
	pairs := calcitePairs()
	base, baseStats, hw := rotationHighWater(t, pairs)

	rot, rotStats := VerifyBatch(corpus.Catalog(), pairs, Options{Workers: 1, TermNodeHighWater: hw})
	if rotStats.InternerEpochs < 2 {
		t.Fatalf("high-water %d (of %d unbounded nodes) forced no rotation: epochs=%d",
			hw, baseStats.TermNodes, rotStats.InternerEpochs)
	}
	for i := range pairs {
		if base[i].Verdict != rot[i].Verdict {
			t.Errorf("pair %s: verdict %v unbounded, %v under rotation",
				pairs[i].ID, base[i].Verdict, rot[i].Verdict)
		}
		if base[i].Cardinal != rot[i].Cardinal {
			t.Errorf("pair %s: cardinal %v unbounded, %v under rotation",
				pairs[i].ID, base[i].Cardinal, rot[i].Cardinal)
		}
	}
	if rotStats.TermNodes >= baseStats.TermNodes {
		t.Errorf("rotation did not shrink the live DAG: %d nodes with rotation, %d without",
			rotStats.TermNodes, baseStats.TermNodes)
	}
}

// TestRotationBoundsEngineTermNodes pins the memory property on the
// long-lived engine: across repeated batches the rotating engine's
// current-epoch DAG stays bounded while the non-rotating engine's grows
// monotonically to the workload's full size.
func TestRotationBoundsEngineTermNodes(t *testing.T) {
	cat := corpus.Catalog()
	pairs := calcitePairs()
	_, baseStats, hw := rotationHighWater(t, pairs)

	bounded := NewEngine(cat, Options{Workers: 2, TermNodeHighWater: hw})
	unbounded := NewEngine(cat, Options{Workers: 2})
	for round := 0; round < 3; round++ {
		bounded.VerifyBatch(context.Background(), pairs, 2)
		unbounded.VerifyBatch(context.Background(), pairs, 2)
	}
	bst, ust := bounded.Stats(), unbounded.Stats()
	if bst.InternerEpochs < 2 {
		t.Fatalf("bounded engine never rotated: epochs=%d (hw=%d)", bst.InternerEpochs, hw)
	}
	if ust.TermNodes < baseStats.TermNodes {
		t.Fatalf("sanity: unbounded engine holds %d nodes, single batch interned %d",
			ust.TermNodes, baseStats.TermNodes)
	}
	// Rotation fires between pairs, so the current epoch can overshoot the
	// mark by at most the terms of the pairs in flight when it crossed;
	// one full batch of slack is a generous ceiling that still separates
	// bounded from unbounded behavior.
	ceiling := int64(hw) + baseStats.TermNodes
	if bst.TermNodes > ceiling {
		t.Errorf("rotating engine's epoch grew to %d nodes, ceiling %d (hw=%d)",
			bst.TermNodes, ceiling, hw)
	}
	if bst.TermNodes >= ust.TermNodes {
		t.Errorf("rotation did not bound the DAG: %d nodes rotating, %d not",
			bst.TermNodes, ust.TermNodes)
	}
}

// TestRotationConcurrentWithWorkers runs rotation under worker concurrency
// with the race detector watching the interner handoff. A sampler
// goroutine continuously loads the engine's current interner and asserts
// the publication ordering maybeRotate guarantees: the replacement epoch
// is installed before the old one is retired, so a load that observes a
// retired interner must already see a different current one on reload —
// workers can never be handed a retired epoch as "current".
func TestRotationConcurrentWithWorkers(t *testing.T) {
	cat := corpus.Catalog()
	pairs := calcitePairs()
	base, _, hw := rotationHighWater(t, pairs)

	eng := NewEngine(cat, Options{Workers: 8, TermNodeHighWater: hw})
	stop := make(chan struct{})
	var staleHandouts atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			in := eng.shared.interner()
			if in.Retired() && eng.shared.interner() == in {
				staleHandouts.Add(1)
			}
		}
	}()

	var results []Result
	for round := 0; round < 2; round++ {
		results, _ = eng.VerifyBatch(context.Background(), pairs, 8)
	}
	close(stop)

	if n := staleHandouts.Load(); n != 0 {
		t.Errorf("a retired interner stayed current %d times; rotation must install the new epoch before retiring the old", n)
	}
	st := eng.Stats()
	if st.InternerEpochs < 2 {
		t.Fatalf("concurrent run never rotated: epochs=%d (hw=%d)", st.InternerEpochs, hw)
	}
	for i := range pairs {
		if base[i].Verdict != results[i].Verdict {
			t.Errorf("pair %s: verdict %v unbounded, %v under concurrent rotation",
				pairs[i].ID, base[i].Verdict, results[i].Verdict)
		}
	}
}

// TestWarmRestartParity pins the durable tier across a simulated process
// restart: a cold engine fills the store, the store is closed and reopened
// (running its crash-recovery scan), and a fresh engine over the same
// directory answers from it — with hits, and with byte-identical verdicts.
func TestWarmRestartParity(t *testing.T) {
	cat := corpus.Catalog()
	pairs := calcitePairs()
	dir := t.TempDir()

	st1, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewEngine(cat, Options{Workers: 4, Store: st1, ShareLemmas: true})
	coldRes, _ := cold.VerifyBatch(context.Background(), pairs, 4)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	if st1.Snapshot().Records == 0 {
		t.Fatal("cold run persisted nothing")
	}

	st2, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, want := st2.Snapshot().Records, st1.Snapshot().Records; got != want {
		t.Fatalf("reopen lost records: %d on disk, %d written", got, want)
	}
	warm := NewEngine(cat, Options{Workers: 4, Store: st2, ShareLemmas: true})
	warmRes, warmStats := warm.VerifyBatch(context.Background(), pairs, 4)
	if warmStats.StoreHits == 0 {
		t.Errorf("warm restart hit the store 0 times: %+v", warmStats)
	}
	for i := range pairs {
		if coldRes[i].Verdict != warmRes[i].Verdict {
			t.Errorf("pair %s: verdict %v cold, %v after warm restart",
				pairs[i].ID, coldRes[i].Verdict, warmRes[i].Verdict)
		}
		if coldRes[i].Cardinal != warmRes[i].Cardinal {
			t.Errorf("pair %s: cardinal %v cold, %v after warm restart",
				pairs[i].ID, coldRes[i].Cardinal, warmRes[i].Cardinal)
		}
	}
}
