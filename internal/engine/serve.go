package engine

import (
	"context"

	"spes/internal/plan"
	"spes/internal/schema"
)

// Engine is the long-lived form of the batch engine, built for an
// always-on verification service: one Engine per process owns the
// normalization memo, the predicate-satisfiability cache, and the LRU
// obligation cache, so their contents compound across requests instead of
// dying with each batch. It differs from a per-batch Shared in what it
// deliberately does NOT keep:
//
//   - no pair-dedupe tables — an entry per pair ever seen would grow
//     without bound and would pin indefinite (timeout/cancel) verdicts
//     forever; in-flight coalescing is the server's job, and definite
//     cross-request reuse falls out of the obligation cache;
//   - no pointer-keyed plan-serialization memo — request plans are
//     freshly built and never share pointers, so that memo would be a
//     pure leak.
//
// All methods are safe for concurrent use: each call builds its own
// Worker, and the shared structures are the engine's concurrency-safe
// memo tables.
type Engine struct {
	cat    *schema.Catalog
	shared *Shared
}

// NewEngine returns a long-lived engine over one catalog. The Workers
// field of opts sets the default fan-out of VerifyBatch; Timeout bounds
// each pair unless the caller's context is tighter.
func NewEngine(cat *schema.Catalog, opts Options) *Engine {
	if opts.ConstraintDigest == "" && cat != nil {
		opts.ConstraintDigest = cat.ConstraintDigest()
	}
	s := NewShared(opts)
	s.rawDedup, s.dedup = nil, nil
	s.keys = nil
	return &Engine{cat: cat, shared: s}
}

// Catalog returns the catalog the engine verifies against.
func (e *Engine) Catalog() *schema.Catalog { return e.cat }

// ConstraintDigest returns the integrity-constraint digest of the
// engine's catalog ("" for a constraint-free catalog); the server echoes
// it in responses so clients can tell which constraint set a verdict
// assumed.
func (e *Engine) ConstraintDigest() string { return e.shared.opts.ConstraintDigest }

// BuildSQL parses and lowers one query against the engine's catalog.
// Builders are per-call, so BuildSQL is safe for concurrent use.
func (e *Engine) BuildSQL(sql string) (plan.Node, error) {
	return plan.NewBuilder(e.cat).BuildSQL(sql)
}

// VerifyPlans verifies one already-built pair with the engine's
// persistent caches. Cancellation degrades the pair to NotProved, never a
// wrong verdict. Panics anywhere in the request — including worker
// construction, which runs before the per-pair recovery inside
// VerifyPlansContext — are recovered into a NotProved internal-error
// verdict: a long-lived engine serves many tenants, so one poisoned
// request must degrade, never die.
func (e *Engine) VerifyPlans(ctx context.Context, id string, q1, q2 plan.Node) (r Result) {
	defer func() {
		if p := recover(); p != nil {
			r = PanicResult(id, p)
			e.shared.record(r)
		}
	}()
	w := e.shared.NewWorker(e.cat)
	return w.VerifyPlansContext(ctx, id, q1, q2)
}

// VerifyPair parses, builds, and verifies one SQL pair, with the same
// panic isolation as VerifyPlans.
func (e *Engine) VerifyPair(ctx context.Context, p Pair) (r Result) {
	defer func() {
		if pv := recover(); pv != nil {
			r = PanicResult(p.ID, pv)
			e.shared.record(r)
		}
	}()
	w := e.shared.NewWorker(e.cat)
	return w.VerifyPairContext(ctx, p)
}

// VerifyBatch fans a batch across workers (0 = the engine's default) with
// batch-local pair dedupe layered over the engine's persistent caches.
// The overlay shares the norm memo, sat table, and obligation cache with
// the engine — so a batch both benefits from and warms the long-lived
// state — while its dedupe tables and counters live only as long as the
// call. BatchStats reports the batch's own work; the engine's lifetime
// Stats include it too.
func (e *Engine) VerifyBatch(ctx context.Context, pairs []Pair, workers int) ([]Result, BatchStats) {
	s := e.batchOverlay(workers)
	pre := s.Snapshot()
	results := make([]Result, len(pairs))
	wall := s.ForEachContext(ctx, e.cat, len(pairs), func(w *Worker, i int) {
		results[i] = w.VerifyPairContext(ctx, pairs[i])
	})
	st := s.aggregate(wall)
	// The memo tables are shared with the engine, so their lifetime
	// counters include pre-batch traffic; report the batch's delta.
	st.NormHits -= pre.NormHits
	st.NormMisses -= pre.NormMisses
	st.ObligationHits -= pre.ObligationHits
	st.ObligationMisses -= pre.ObligationMisses
	return results, st
}

// Stats returns a consistent snapshot of the engine's lifetime counters;
// safe to call from any goroutine while verifications are in flight.
func (e *Engine) Stats() StatsSnapshot { return e.shared.Snapshot() }

// batchOverlay builds a batch-scoped Shared on top of the engine's
// persistent state: same memo tables, fresh dedupe tables and counters.
func (e *Engine) batchOverlay(workers int) *Shared {
	s := e.shared
	// No interner copy: the overlay delegates interner() to its parent, so
	// an epoch rotation during the batch is visible to overlay workers too.
	o := &Shared{opts: s.opts, parent: s, lemmas: s.lemmas}
	if workers > 0 {
		o.opts.Workers = workers
	}
	if !o.opts.DisableCaching {
		o.cache = s.cache
		o.norm = s.norm
		o.sat = s.sat
		o.rawDedup = &dedupeMap{m: make(map[uint64][]*dedupeEntry)}
		o.dedup = &dedupeMap{m: make(map[uint64][]*dedupeEntry)}
		o.keys = make(map[plan.Node]string)
	}
	return o
}
