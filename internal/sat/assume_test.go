package sat

import (
	"math/rand"
	"testing"
)

func TestSolveUnderAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	c := s.NewVar()
	s.AddClause(nlit(a), lit(b))
	s.AddClause(nlit(b), lit(c))

	if got := s.Solve(lit(a)); got != Sat {
		t.Fatalf("Solve(a) = %v, want sat", got)
	}
	if !s.Value(a) || !s.Value(b) || !s.Value(c) {
		t.Errorf("assumption a should force b and c: a=%v b=%v c=%v",
			s.Value(a), s.Value(b), s.Value(c))
	}
	// The assumption must not persist: ¬a is satisfiable afterwards.
	if got := s.Solve(nlit(a)); got != Sat {
		t.Fatalf("Solve(~a) = %v, want sat", got)
	}
	if s.Value(a) {
		t.Error("a should be false under assumption ~a")
	}
}

func TestFailedAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(nlit(a), nlit(b)) // ¬a ∨ ¬b

	if got := s.Solve(lit(a), lit(b)); got != Unsat {
		t.Fatalf("Solve(a, b) = %v, want unsat", got)
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("FailedAssumptions is empty after an assumption failure")
	}
	seen := map[Lit]bool{}
	for _, l := range failed {
		if l != lit(a) && l != lit(b) {
			t.Errorf("failed assumption %v is not among the assumptions", l)
		}
		seen[l] = true
	}
	// The reported subset must itself be inconsistent with the clause set:
	// here that requires both assumptions.
	if !seen[lit(a)] || !seen[lit(b)] {
		t.Errorf("failed set %v should contain both a and b", failed)
	}
	// The problem itself stays satisfiable.
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() after assumption failure = %v, want sat", got)
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.NewVar()
	if got := s.Solve(lit(a), nlit(a)); got != Unsat {
		t.Fatalf("Solve(a, ~a) = %v, want unsat", got)
	}
	if len(s.FailedAssumptions()) == 0 {
		t.Error("contradictory assumptions should yield a failed set")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want sat", got)
	}
}

func TestAssumptionFalseAtTopLevel(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(nlit(a)) // unit: a is false at level 0
	if got := s.Solve(lit(a)); got != Unsat {
		t.Fatalf("Solve(a) = %v, want unsat", got)
	}
	failed := s.FailedAssumptions()
	if len(failed) != 1 || failed[0] != lit(a) {
		t.Errorf("failed = %v, want [a]", failed)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want sat", got)
	}
}

// TestIncrementalClauseAddition interleaves clause addition, assumption
// solves, and plain solves, checking the solver stays consistent and keeps
// the watch lists usable throughout.
func TestIncrementalClauseAddition(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	c := s.NewVar()
	s.AddClause(lit(a), lit(b), lit(c))
	if got := s.Solve(nlit(a), nlit(b)); got != Sat {
		t.Fatalf("Solve(~a, ~b) = %v, want sat", got)
	}
	if !s.Value(c) {
		t.Error("c must be true under ~a, ~b")
	}
	s.AddClause(nlit(c))
	if got := s.Solve(nlit(a), nlit(b)); got != Unsat {
		t.Fatalf("Solve(~a, ~b) after ¬c = %v, want unsat", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want sat", got)
	}
	s.AddClause(nlit(a))
	s.AddClause(nlit(b))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve() = %v, want unsat", got)
	}
	// Genuine unsatisfiability: no failed-assumption set.
	if s.FailedAssumptions() != nil {
		t.Errorf("FailedAssumptions = %v on a top-level unsat problem", s.FailedAssumptions())
	}
}

// TestAssumptionsAgainstOneShot cross-checks assumption-based solving
// against re-encoding the assumptions as unit clauses in a fresh solver, on
// random 3-SAT instances near the phase-transition density.
func TestAssumptionsAgainstOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nVars, nClauses = 18, 76
	for iter := 0; iter < 40; iter++ {
		var clauses [][]Lit
		for i := 0; i < nClauses; i++ {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses = append(clauses, cl)
		}
		inc := New()
		for v := 0; v < nVars; v++ {
			inc.NewVar()
		}
		for _, cl := range clauses {
			inc.AddClause(cl...)
		}
		// Several assumption sets against the same incremental solver, so
		// learned clauses from earlier calls are live for later ones.
		for trial := 0; trial < 4; trial++ {
			var assumps []Lit
			for v := 0; v < 3; v++ {
				assumps = append(assumps, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
			}
			ref := New()
			for v := 0; v < nVars; v++ {
				ref.NewVar()
			}
			ok := true
			for _, cl := range clauses {
				ok = ref.AddClause(cl...) && ok
			}
			for _, l := range assumps {
				ok = ref.AddClause(l) && ok
			}
			want := Unsat
			if ok {
				want = ref.Solve()
			}
			if got := inc.Solve(assumps...); got != want {
				t.Fatalf("iter %d trial %d: incremental %v, one-shot %v (assumps %v)",
					iter, trial, got, want, assumps)
			}
		}
	}
}
