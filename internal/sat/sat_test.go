package sat

import (
	"math/rand"
	"testing"
)

func lit(v int) Lit  { return MkLit(v, false) }
func nlit(v int) Lit { return MkLit(v, true) }

func TestLitEncoding(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Fatalf("bad positive literal: %v", l)
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Fatalf("bad negation: %v", n)
	}
	if n.Not() != l {
		t.Fatal("double negation is not identity")
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(lit(a), lit(b))
	s.AddClause(nlit(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if s.Value(a) {
		t.Error("a should be false")
	}
	if !s.Value(b) {
		t.Error("b should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a))
	if ok := s.AddClause(nlit(a)); ok {
		t.Error("AddClause should report top-level conflict")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if ok := s.AddClause(); ok {
		t.Error("empty clause should report conflict")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a), nlit(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
}

// TestPigeonhole checks unsatisfiability of PHP(n+1, n): n+1 pigeons in n
// holes. This exercises conflict analysis and learning.
func TestPigeonhole(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		s := New()
		// v[p][h]: pigeon p sits in hole h.
		v := make([][]int, n+1)
		for p := range v {
			v[p] = make([]int, n)
			for h := range v[p] {
				v[p][h] = s.NewVar()
			}
		}
		// Each pigeon sits somewhere.
		for p := 0; p <= n; p++ {
			cl := make([]Lit, n)
			for h := 0; h < n; h++ {
				cl[h] = lit(v[p][h])
			}
			s.AddClause(cl...)
		}
		// No two pigeons share a hole.
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(nlit(v[p1][h]), nlit(v[p2][h]))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want unsat", n+1, n, got)
		}
	}
}

// TestGraphColoring checks a satisfiable structured instance: 3-coloring of a
// cycle of even length (possible) and odd length with 2 colors (impossible).
func TestGraphColoring(t *testing.T) {
	color := func(cycle, colors int) Status {
		s := New()
		v := make([][]int, cycle)
		for i := range v {
			v[i] = make([]int, colors)
			for c := range v[i] {
				v[i][c] = s.NewVar()
			}
		}
		for i := 0; i < cycle; i++ {
			cl := make([]Lit, colors)
			for c := 0; c < colors; c++ {
				cl[c] = lit(v[i][c])
			}
			s.AddClause(cl...)
			j := (i + 1) % cycle
			for c := 0; c < colors; c++ {
				s.AddClause(nlit(v[i][c]), nlit(v[j][c]))
			}
		}
		return s.Solve()
	}
	if got := color(5, 2); got != Unsat {
		t.Errorf("odd cycle 2-coloring = %v, want unsat", got)
	}
	if got := color(6, 2); got != Sat {
		t.Errorf("even cycle 2-coloring = %v, want sat", got)
	}
	if got := color(7, 3); got != Sat {
		t.Errorf("odd cycle 3-coloring = %v, want sat", got)
	}
}

// TestIncrementalBlocking enumerates all models of a small formula by adding
// blocking clauses, the access pattern the lazy SMT loop uses.
func TestIncrementalBlocking(t *testing.T) {
	s := New()
	vars := []int{s.NewVar(), s.NewVar(), s.NewVar()}
	s.AddClause(lit(vars[0]), lit(vars[1]), lit(vars[2])) // at least one true
	count := 0
	for s.Solve() == Sat {
		count++
		if count > 10 {
			t.Fatal("too many models")
		}
		block := make([]Lit, len(vars))
		for i, v := range vars {
			block[i] = MkLit(v, s.Value(v))
		}
		s.AddClause(block...)
	}
	if count != 7 {
		t.Errorf("enumerated %d models, want 7", count)
	}
}

// TestRandom3SATDifferential cross-checks the solver against brute force on
// random 3-SAT instances.
func TestRandom3SATDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + r.Intn(8)
		nClauses := 1 + r.Intn(4*nVars)
		cls := make([][]Lit, nClauses)
		for i := range cls {
			width := 1 + r.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				c[j] = MkLit(r.Intn(nVars), r.Intn(2) == 0)
			}
			cls[i] = c
		}
		want := bruteForceSat(nVars, cls)
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, c := range cls {
			s.AddClause(c...)
		}
		got := s.Solve()
		wantStatus := Unsat
		if want {
			wantStatus = Sat
		}
		if got != wantStatus {
			t.Fatalf("iter %d: solver=%v brute=%v clauses=%v", iter, got, wantStatus, cls)
		}
		if got == Sat {
			// Verify the model actually satisfies every clause.
			for _, c := range cls {
				ok := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: reported model violates clause %v", iter, c)
				}
			}
		}
	}
}

func bruteForceSat(nVars int, cls [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range cls {
			sat := false
			for _, l := range c {
				val := m>>l.Var()&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestMaxConflictsBudget(t *testing.T) {
	// A hard instance with a tiny budget should return Unknown, not hang.
	n := 7
	s := New()
	v := make([][]int, n+1)
	for p := range v {
		v[p] = make([]int, n)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = lit(v[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(nlit(v[p1][h]), nlit(v[p2][h]))
			}
		}
	}
	s.MaxConflicts = 10
	if got := s.Solve(); got != Unknown {
		// The instance may be solved within budget on some heuristics;
		// only a wrong answer is a failure.
		if got == Sat {
			t.Errorf("PHP reported sat")
		}
	}
}
