package sat

// varHeap is a max-heap of variables ordered by activity, with an index map
// for decrease/increase-key. Popped variables may be stale (already
// assigned); the solver filters them.
type varHeap struct {
	act  *[]float64
	heap []int
	pos  []int // variable -> heap index, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(a, b int) bool {
	return (*h.act)[h.heap[a]] > (*h.act)[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// push inserts v if not present.
func (h *varHeap) push(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] != -1 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

// pop removes and returns the variable with maximum activity.
func (h *varHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, true
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v int) {
	if v < len(h.pos) && h.pos[v] != -1 {
		h.up(h.pos[v])
	}
}
