// Package sat implements a CDCL (conflict-driven clause learning) boolean
// satisfiability solver: two-watched-literal propagation, first-UIP conflict
// analysis, VSIDS-style activity ordering with phase saving, and geometric
// restarts. It is the propositional core underneath the SMT solver in
// internal/smt.
//
// The solver is incremental in the style the lazy SMT loop needs: after
// Solve returns true, callers may add blocking clauses and call Solve again.
package sat

import (
	"fmt"
)

// Lit is a literal: variable index shifted left once, with the low bit set
// for negation. Variables are dense non-negative integers allocated with
// NewVar.
type Lit int32

// MkLit builds a literal for variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

// Var returns the variable index of l.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether l is a negated literal.
func (l Lit) Neg() bool { return l&1 == 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

// Status is the result of a Solve call.
type Status int

const (
	// Unknown indicates the solver gave up (budget exceeded).
	Unknown Status = iota
	// Sat indicates a satisfying assignment was found (see Value).
	Sat
	// Unsat indicates the clause set is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause   // problem clauses
	learnts []*clause   // learnt clauses
	watches [][]*clause // watch lists indexed by literal

	assign   []lbool // current assignment by variable
	level    []int   // decision level per variable
	reason   []*clause
	activity []float64
	polarity []bool // saved phase: last assigned sign per variable
	seen     []bool // scratch for analyze

	trail    []Lit
	trailLim []int
	qhead    int

	heap    *varHeap
	varInc  float64
	claInc  float64
	unsat   bool  // a top-level conflict was derived
	failed  []Lit // assumption subset behind the last assumption failure
	numConf int64

	// MaxConflicts bounds a single Solve call; 0 means no bound. When the
	// bound trips, Solve returns Unknown.
	MaxConflicts int64
	// Stop, when non-nil, is polled periodically in the conflict loop (every
	// stopPollMask+1 conflicts, so cheap closures stay off the hot path); a
	// true return aborts Solve with Unknown. The SMT layer wires deadline
	// and context checks here so a long CDCL search inside one model round
	// cannot outlive its budget.
	Stop func() bool
}

// stopPollMask throttles Stop polling to every 256th conflict.
const stopPollMask = 255

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1}
	s.heap = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true) // default phase: false (negated)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v)
	return v
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// Value returns the assignment of variable v in the most recent model. It is
// meaningful only after Solve returns Sat.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// AddClause adds a clause over the given literals. It returns false if the
// clause makes the problem trivially unsatisfiable at the top level.
// Tautologies are dropped and duplicate literals removed. AddClause must be
// called at decision level zero (i.e., before Solve or between Solve calls).
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	// Dedupe and detect tautologies.
	seen := make(map[Lit]bool, len(lits))
	out := lits[:0:0]
	for _, l := range lits {
		if int(l.Var()) >= s.NumVars() {
			panic("sat: literal over unallocated variable")
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at top level
		case lFalse:
			continue // cannot contribute
		}
		if seen[l.Not()] {
			return true // tautology
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.enqueue(out[0], nil)
		if s.propagate() != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) enqueue(l Lit, from *clause) {
	v := l.Var()
	s.assign[v] = lTrue
	if l.Neg() {
		s.assign[v] = lFalse
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.polarity[v] = !l.Neg()
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		s.watches[p] = nil
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the first watch is true, the clause is satisfied.
			if s.value(c.lits[0]) == lTrue {
				s.watches[p] = append(s.watches[p], c)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			s.watches[p] = append(s.watches[p], c)
			if s.value(c.lits[0]) == lFalse {
				// Conflict: restore remaining watches and report.
				s.watches[p] = append(s.watches[p], ws[i+1:]...)
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(c.lits[0], c)
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Compute backtrack level: second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxIdx := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxIdx].Var()] {
				maxIdx = i
			}
		}
		learnt[1], learnt[maxIdx] = learnt[maxIdx], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.activity += s.claInc
	if c.activity > 1e100 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-100
		}
		s.claInc *= 1e-100
	}
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.level[v] = -1
		s.heap.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	for {
		v, ok := s.heap.pop()
		if !ok {
			return -1
		}
		if s.assign[v] == lUndef {
			return v
		}
	}
}

// Solve searches for a satisfying assignment under the given assumption
// literals (MiniSat-style "solving under assumptions"). Assumptions are
// placed as the first decisions, so everything the solver learns — learned
// clauses, variable activities, saved phases — is a consequence of the
// clause database alone and remains valid for later Solve calls with
// different assumptions. When the assumptions themselves are refuted, Solve
// returns Unsat without marking the problem unsatisfiable and
// FailedAssumptions reports a conflicting subset.
//
// Solve is restartable: add more clauses after any result and call it again.
func (s *Solver) Solve(assumps ...Lit) Status {
	s.failed = nil
	for _, p := range assumps {
		if p.Var() >= s.NumVars() {
			panic("sat: assumption over unallocated variable")
		}
	}
	if s.unsat {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.unsat = true
		return Unsat
	}
	var conflictsSinceRestart int64
	restartLimit := int64(100)
	startConf := s.numConf

	for {
		confl := s.propagate()
		if confl != nil {
			s.numConf++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if s.MaxConflicts > 0 && s.numConf-startConf > s.MaxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			if s.Stop != nil && s.numConf&stopPollMask == 0 && s.Stop() {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}
		if conflictsSinceRestart >= restartLimit {
			conflictsSinceRestart = 0
			restartLimit += restartLimit / 2
			// A restart cancels the assumption prefix too; the placement
			// loop below re-establishes it before any free decision.
			s.cancelUntil(0)
			continue
		}
		if s.decisionLevel() < len(assumps) {
			p := assumps[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				// Already implied: open a dummy decision level so each
				// assumption keeps its positional level.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				// The clause database refutes this assumption given the
				// earlier ones. The problem itself is not unsatisfiable, so
				// s.unsat stays clear; report the conflicting subset.
				s.failed = s.analyzeFinal(p)
				s.cancelUntil(0)
				return Unsat
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(p, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == -1 {
			return Sat // all variables assigned
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, !s.polarity[v]), nil)
	}
}

// FailedAssumptions returns, after Solve(assumps...) returned Unsat because
// of its assumptions, a subset of those assumptions (in assumed polarity)
// whose conjunction the clause database refutes. It returns nil when the
// problem is unsatisfiable outright, and is reset by the next Solve call.
func (s *Solver) FailedAssumptions() []Lit { return s.failed }

// analyzeFinal walks reason chains backward from the falsified assumption p
// to the assumption decisions that forced it, returning p plus those
// assumptions in assumed polarity. It is only called while every decision on
// the trail is an assumption.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	out := []Lit{p}
	if s.decisionLevel() == 0 {
		return out
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			out = append(out, s.trail[i])
		} else {
			for _, l := range s.reason[v].lits {
				if l.Var() != v && s.level[l.Var()] > 0 {
					s.seen[l.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
	return out
}
