package store

// This file is the store's replication surface: the append-only log viewed
// as a sequence of sealed, checksummed, offset-addressable segments, plus
// the two operations a remote tail protocol needs — read a record-aligned
// byte range of my log (origin side) and apply a fetched range into my own
// log under the same keys (replica side).
//
// Why segments work here: the log is append-only and records are immutable
// once written, so any byte range of the durable prefix is a stable,
// re-fetchable unit. A segment seals when the open tail passes
// SegmentTargetBytes; its CRC is over the raw framed bytes, so a tailer can
// detect in-flight corruption at the chunk level and every record still
// carries its own framing CRC for record-level verification.
//
// Why applying replicated records is sound: store keys are canonical
// serializations namespaced by the constraint digest — node-independent by
// construction — and lookups are first-wins, so re-applying a record (or
// applying records out of order, or twice after a resumed tail) cannot
// change any answer. Corrupt records fail their checksum and are never
// indexed: replication, like the log itself, can only LOSE verdicts, never
// fabricate one.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// SegmentTargetBytes is the sealing threshold: the open tail segment seals
// once it reaches this many bytes (at a record boundary, so segments are
// always record-aligned). 64 KiB keeps a tailing replica's fetches small
// enough to rate-limit and re-fetch cheaply.
const SegmentTargetBytes = 1 << 16

// Segment describes one sealed, immutable byte range of the log.
type Segment struct {
	Index int    `json:"index"`
	Off   int64  `json:"off"`
	Len   int64  `json:"len"`
	CRC32 uint32 `json:"crc32"`
}

// ErrCorruptRange reports that a requested log range starts at a record
// that is torn or fails its checksum — the tailer should treat everything
// from that offset as unreadable (it can only re-fetch or stall, matching
// the scan-side rule that a torn record ends the trustworthy prefix).
var ErrCorruptRange = errors.New("store: corrupt record in requested range")

// noteDurableLocked folds one durably-written record (framing header plus
// payload, ending at offset end) into the segment accumulator, sealing the
// open segment when it passes the target. Callers hold s.mu; records enter
// in log order, so the running CRC matches the raw bytes on disk.
func (s *Store) noteDurableLocked(end int64, hdr, payload []byte) {
	s.segCRC = crc32.Update(s.segCRC, crc32.IEEETable, hdr)
	s.segCRC = crc32.Update(s.segCRC, crc32.IEEETable, payload)
	if end-s.segStart >= SegmentTargetBytes {
		s.segs = append(s.segs, Segment{
			Index: len(s.segs),
			Off:   s.segStart,
			Len:   end - s.segStart,
			CRC32: s.segCRC,
		})
		s.segStart = end
		s.segCRC = 0
	}
}

// Segments returns the sealed segments (a copy) and the current durable
// size. Bytes in [lastSealed.Off+Len, size) are the open tail — readable
// through ReadTail like any other range, just not yet summarized.
func (s *Store) Segments() ([]Segment, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs := make([]Segment, len(s.segs))
	copy(segs, s.segs)
	return segs, s.size
}

// ReadSegment reads one sealed segment's raw bytes and verifies them
// against the sealed CRC, so a replica fetching by index gets either the
// exact bytes the origin sealed or an error — never silently damaged data.
func (s *Store) ReadSegment(index int) ([]byte, Segment, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, Segment{}, errors.New("store: closed")
	}
	if index < 0 || index >= len(s.segs) {
		n := len(s.segs)
		s.mu.Unlock()
		return nil, Segment{}, fmt.Errorf("store: segment %d of %d", index, n)
	}
	seg := s.segs[index]
	s.mu.Unlock()
	data := make([]byte, seg.Len)
	if _, err := s.f.ReadAt(data, seg.Off); err != nil {
		return nil, seg, err
	}
	if crc32.ChecksumIEEE(data) != seg.CRC32 {
		return nil, seg, fmt.Errorf("%w: segment %d checksum mismatch", ErrCorruptRange, index)
	}
	return data, seg, nil
}

// ReadTail reads whole framed records starting at the record boundary
// `from`, up to roughly maxBytes (always at least one record when one
// exists), and returns them with the current durable size — everything a
// resumable remote tail needs: the caller advances its position by
// len(data) and knows its lag is size-(from+len(data)).
//
// Every returned record has been re-verified against its framing CRC, so
// on-disk corruption at the origin truncates the response at the last good
// record; if the record AT `from` is itself bad, ErrCorruptRange reports
// that the tail from here is unreadable rather than returning bytes a
// replica would immediately reject.
func (s *Store) ReadTail(from int64, maxBytes int) ([]byte, int64, error) {
	s.mu.Lock()
	size := s.size
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, 0, errors.New("store: closed")
	}
	if from < 0 || from > size {
		return nil, size, fmt.Errorf("store: tail offset %d outside log of %d bytes", from, size)
	}
	if maxBytes <= 0 {
		maxBytes = SegmentTargetBytes
	}
	var out []byte
	off := from
	hdr := make([]byte, headerLen)
	for off < size {
		if size-off < headerLen {
			break // a torn header cannot be durable; s.size never ends inside framing
		}
		if _, err := s.f.ReadAt(hdr, off); err != nil {
			return nil, size, err
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n == 0 || n > maxRecordLen || off+headerLen+int64(n) > size {
			if len(out) == 0 {
				return nil, size, fmt.Errorf("%w: torn framing at offset %d", ErrCorruptRange, off)
			}
			break
		}
		if len(out) > 0 && len(out)+headerLen+int(n) > maxBytes {
			break
		}
		payload := make([]byte, n)
		if _, err := s.f.ReadAt(payload, off+headerLen); err != nil {
			return nil, size, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if len(out) == 0 {
				return nil, size, fmt.Errorf("%w: checksum failure at offset %d", ErrCorruptRange, off)
			}
			break
		}
		out = append(out, hdr...)
		out = append(out, payload...)
		off += headerLen + int64(n)
	}
	return out, size, nil
}

// ApplyStats reports what one replicated chunk did to the local store.
type ApplyStats struct {
	// Records is how many well-formed records the chunk carried; Applied is
	// how many were durably written here; Duplicates were already present
	// under the same key (first-wins: the local record stands); Dropped
	// were lost to an injected store-append fault or write error (sound:
	// the position does not advance past a chunk that errored, and a
	// dropped record re-arrives on restart or is simply re-proved).
	Records    int
	Applied    int
	Duplicates int
	Dropped    int
}

// ApplyReplicated scans framed records from a chunk fetched off a peer's
// log (see ReadTail) and appends the novel ones to the local store under
// the same canonical keys, synchronously — the replicator is a background
// goroutine, so blocking on the disk here is fine and keeps a burst of
// replicated records from flooding the write-behind queue into sound but
// silent drops.
//
// Order-free and idempotent: records already present under their key count
// as Duplicates and the local copy wins, so replaying a chunk (resumed
// tail, re-fetch after corruption) changes nothing. A record that fails
// its checksum stops the apply with an error and is never indexed: the
// caller must not advance its tail position past the chunk, so the bytes
// are re-fetched — in-flight corruption can delay replication, never
// poison it.
func (s *Store) ApplyReplicated(data []byte) (ApplyStats, error) {
	var st ApplyStats
	off := 0
	for off < len(data) {
		if len(data)-off < headerLen {
			return st, fmt.Errorf("%w: torn header in replicated chunk", ErrCorruptRange)
		}
		n := binary.BigEndian.Uint32(data[off : off+4])
		sum := binary.BigEndian.Uint32(data[off+4 : off+headerLen])
		if n == 0 || n > maxRecordLen || off+headerLen+int(n) > len(data) {
			return st, fmt.Errorf("%w: torn payload in replicated chunk", ErrCorruptRange)
		}
		payload := data[off+headerLen : off+headerLen+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return st, fmt.Errorf("%w: checksum failure in replicated chunk", ErrCorruptRange)
		}
		st.Records++
		s.applyRecord(payload, &st)
		off += headerLen + int(n)
	}
	return st, nil
}

// applyRecord applies one checksum-verified record payload with first-wins
// dedupe. Unknown kinds are skipped (a newer origin's record types are
// data this replica cannot index, not an error).
func (s *Store) applyRecord(payload []byte, st *ApplyStats) {
	switch payload[0] {
	case recVerdict:
		key, _, ok := decodeVerdict(payload)
		if !ok {
			return
		}
		if _, hit := s.LookupVerdict(key); hit {
			st.Duplicates++
			return
		}
		s.applySync(pending{payload: payload, key: key, kind: recVerdict}, st)
	case recWitness:
		key, _, ok := decodeWitness(payload)
		if !ok {
			return
		}
		if _, hit := s.LookupWitness(key); hit {
			st.Duplicates++
			return
		}
		s.applySync(pending{payload: payload, key: key, kind: recWitness}, st)
	case recLemma:
		lits, ok := decodeLemma(payload)
		if !ok {
			return
		}
		fp := lemmaFingerprint(lits)
		s.mu.Lock()
		dup := s.lemmaFP[fp]
		if !dup {
			s.lemmaFP[fp] = true
		}
		s.mu.Unlock()
		if dup {
			st.Duplicates++
			return
		}
		if s.applySync(pending{payload: payload}, st) {
			// Mirror scan(): keep Lemmas() complete for whoever opens this
			// log next (the live engine pool was seeded at construction).
			s.mu.Lock()
			s.lemmas = append(s.lemmas, lits...)
			s.lemmaN = append(s.lemmaN, len(lits))
			s.mu.Unlock()
		}
	}
}

// applySync writes one replicated record through the same durable path as
// the write-behind writer (including the store-append fault window) and
// folds the outcome into st. The payload is copied: it aliases the fetched
// chunk, which the caller may reuse.
func (s *Store) applySync(p pending, st *ApplyStats) bool {
	p.payload = append([]byte(nil), p.payload...)
	if s.writeOne(p) {
		st.Applied++
		return true
	}
	st.Dropped++
	return false
}
