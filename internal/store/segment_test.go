package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// fillVerdicts appends n distinct verdicts and flushes them durable.
func fillVerdicts(t *testing.T, s *Store, prefix string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		s.AppendVerdict(fmt.Sprintf("%s-key-%04d", prefix, i), i%2 == 0)
		if i%256 == 0 {
			s.Flush() // stay inside the write-behind queue's depth
		}
	}
	s.Flush()
}

func TestSegmentsSealAtTargetAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Each record is ~30 bytes framed; 4000 of them crosses the 64 KiB
	// target at least once.
	fillVerdicts(t, s, "seal", 4000)
	segs, size := s.Segments()
	if len(segs) == 0 {
		t.Fatalf("no sealed segments after %d bytes (target %d)", size, SegmentTargetBytes)
	}
	// Segments tile the durable prefix: contiguous, record-aligned, sealed
	// at or just past the target.
	var off int64
	for i, seg := range segs {
		if seg.Index != i || seg.Off != off {
			t.Fatalf("segment %d: index=%d off=%d, want index=%d off=%d", i, seg.Index, seg.Off, i, off)
		}
		if seg.Len < SegmentTargetBytes {
			t.Fatalf("segment %d sealed at %d bytes, below target %d", i, seg.Len, SegmentTargetBytes)
		}
		data, got, err := s.ReadSegment(i)
		if err != nil {
			t.Fatalf("ReadSegment(%d): %v", i, err)
		}
		if got != seg || int64(len(data)) != seg.Len {
			t.Fatalf("ReadSegment(%d) returned %+v (%d bytes), want %+v", i, got, len(data), seg)
		}
		if crc32.ChecksumIEEE(data) != seg.CRC32 {
			t.Fatalf("segment %d bytes do not match sealed CRC", i)
		}
		off += seg.Len
	}
	if off > size {
		t.Fatalf("sealed segments cover %d bytes, log only %d", off, size)
	}
}

// TestSegmentsSurviveReopen pins that sealing is a pure function of the log
// bytes: reopening yields the identical segment list, so a tailer's notion
// of the origin's segments survives origin restarts.
func TestSegmentsSurviveReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fillVerdicts(t, s, "reopen", 4000)
	segs1, size1 := s.Segments()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	segs2, size2 := s2.Segments()
	if size1 != size2 || len(segs1) != len(segs2) {
		t.Fatalf("reopen changed the view: %d segs/%d bytes -> %d segs/%d bytes",
			len(segs1), size1, len(segs2), size2)
	}
	for i := range segs1 {
		if segs1[i] != segs2[i] {
			t.Fatalf("segment %d changed across reopen: %+v -> %+v", i, segs1[i], segs2[i])
		}
	}
}

func TestReadTailAlignmentAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillVerdicts(t, s, "tail", 500)
	_, size := s.Segments()

	// Walk the whole log in small chunks as a tailer would; the
	// concatenation must be byte-identical to the file.
	var got []byte
	var pos int64
	for pos < size {
		chunk, durable, err := s.ReadTail(pos, 512)
		if err != nil {
			t.Fatalf("ReadTail(%d): %v", pos, err)
		}
		if durable != size {
			t.Fatalf("durable size %d, want %d", durable, size)
		}
		if len(chunk) == 0 {
			t.Fatalf("empty chunk at %d with %d bytes remaining", pos, size-pos)
		}
		got = append(got, chunk...)
		pos += int64(len(chunk))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("tail walk reassembled %d bytes != file %d bytes", len(got), len(want))
	}
	// Caught up: empty read, no error.
	chunk, _, err := s.ReadTail(size, 512)
	if err != nil || len(chunk) != 0 {
		t.Fatalf("ReadTail at durable size: %d bytes, err=%v", len(chunk), err)
	}
	// Beyond the log is the caller's bug, reported as such.
	if _, _, err := s.ReadTail(size+1, 512); err == nil {
		t.Fatal("ReadTail past the log did not error")
	}
}

// TestReplicationParity is the acceptance-criteria pin: a replica that
// tailed the whole log serves the exact records (modulo order) the origin
// wrote — same verdicts under the same keys, same witnesses, same lemmas.
func TestReplicationParity(t *testing.T) {
	dir := t.TempDir()
	origin, err := Open(filepath.Join(dir, "origin.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	for i := 0; i < 300; i++ {
		origin.AppendVerdict(fmt.Sprintf("ob-%03d", i), i%3 == 0)
	}
	origin.AppendWitness("pair-a\x00pair-b", []byte("witness-bytes-1"))
	origin.AppendWitness("pair-c\x00pair-d", []byte("witness-bytes-2"))
	origin.AppendLemma([]LemmaLit{{AtomKey: "atom-1", Pos: true}, {AtomKey: "atom-2", Pos: false}})
	origin.Flush()

	replica, err := Open(filepath.Join(dir, "replica.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	var pos int64
	var applied int
	for {
		chunk, size, err := origin.ReadTail(pos, 4096)
		if err != nil {
			t.Fatalf("ReadTail(%d): %v", pos, err)
		}
		if len(chunk) == 0 {
			if pos != size {
				t.Fatalf("tail stalled at %d of %d", pos, size)
			}
			break
		}
		st, err := replica.ApplyReplicated(chunk)
		if err != nil {
			t.Fatalf("ApplyReplicated at %d: %v", pos, err)
		}
		applied += st.Applied
		pos += int64(len(chunk))
	}
	if applied == 0 {
		t.Fatal("nothing applied")
	}

	// Exact record parity, modulo order: compare the two logs' decoded
	// record multisets.
	if o, r := recordMultiset(t, origin.Path()), recordMultiset(t, replica.Path()); !bytes.Equal(o, r) {
		t.Fatalf("record multisets differ:\norigin:  %q\nreplica: %q", o, r)
	}
	// And the replica answers like the origin.
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("ob-%03d", i)
		v, ok := replica.LookupVerdict(key)
		if !ok || v != (i%3 == 0) {
			t.Fatalf("replica verdict for %s: (%v,%v), want (%v,true)", key, v, ok, i%3 == 0)
		}
	}
	if w, ok := replica.LookupWitness("pair-a\x00pair-b"); !ok || string(w) != "witness-bytes-1" {
		t.Fatalf("replica witness: %q, %v", w, ok)
	}
	if got := len(replica.Lemmas()); got != 1 {
		t.Fatalf("replica lemmas = %d, want 1", got)
	}

	// Idempotence: replaying the whole log applies nothing new.
	chunk, _, err := origin.ReadTail(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	st, err := replica.ApplyReplicated(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 0 || st.Duplicates != st.Records {
		t.Fatalf("replay applied %d (dups %d of %d records); replication is not idempotent",
			st.Applied, st.Duplicates, st.Records)
	}
}

// recordMultiset decodes every record payload in a log file and returns
// the sorted, joined payloads — an order-independent fingerprint of the
// log's contents.
func recordMultiset(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var payloads []string
	off := 0
	for off < len(data) {
		if len(data)-off < headerLen {
			t.Fatalf("%s: torn header at %d", path, off)
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if off+headerLen+n > len(data) {
			t.Fatalf("%s: torn payload at %d", path, off)
		}
		payloads = append(payloads, string(data[off+headerLen:off+headerLen+n]))
		off += headerLen + n
	}
	sort.Strings(payloads)
	var out []byte
	for _, p := range payloads {
		out = append(out, p...)
		out = append(out, 0)
	}
	return out
}

// TestApplyReplicatedInFlightCorruption bit-flips a fetched chunk and
// proves the apply rejects it without fabricating: the replica afterward
// holds only records that match the origin byte for byte.
func TestApplyReplicatedInFlightCorruption(t *testing.T) {
	dir := t.TempDir()
	origin, err := Open(filepath.Join(dir, "origin.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	fillVerdicts(t, origin, "flip", 50)
	chunk, _, err := origin.ReadTail(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte at every position in turn; every variant must either
	// error out or (when the flip lands in a record not yet reached) apply
	// only records whose checksums still verify. Sample positions to keep
	// the test fast.
	for flip := 0; flip < len(chunk); flip += 97 {
		replica, err := Open(filepath.Join(dir, fmt.Sprintf("rep-%d.log", flip)))
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), chunk...)
		bad[flip] ^= 0x40
		_, err = replica.ApplyReplicated(bad)
		if err == nil {
			// A flip in a length prefix can shift framing so later "records"
			// happen to checksum — astronomically unlikely; a flip in payload
			// or CRC must always be caught.
			t.Fatalf("flip at %d applied cleanly", flip)
		}
		// Nothing fabricated: every verdict the replica DID index matches
		// the origin's.
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("flip-key-%04d", i)
			if v, ok := replica.LookupVerdict(key); ok && v != (i%2 == 0) {
				t.Fatalf("flip at %d fabricated verdict for %s", flip, key)
			}
		}
		replica.Close()
	}
}

// TestReadTailOnDiskCorruption bit-flips the origin's log on disk and
// proves the tail protocol stops serving at the damage instead of shipping
// poison: records before the flip are served, the flipped record errors.
func TestReadTailOnDiskCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fillVerdicts(t, s, "disk", 50)
	_, size := s.Segments()

	// Find the third record's payload and flip a byte in it on disk.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < 2; i++ {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += headerLen + n
	}
	corruptAt := int64(off + headerLen + 2)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{data[corruptAt] ^ 0xFF}, corruptAt); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The tail serves the two intact records...
	chunk, _, err := s.ReadTail(0, 1<<20)
	if err != nil {
		t.Fatalf("ReadTail before the damage: %v", err)
	}
	if int64(len(chunk)) >= size || len(chunk) != off {
		t.Fatalf("served %d bytes, want exactly the %d intact bytes before the flip", len(chunk), off)
	}
	// ...and reports the damaged range as unreadable rather than serving it.
	if _, _, err := s.ReadTail(int64(off), 1<<20); err == nil {
		t.Fatal("ReadTail served a record that fails its checksum")
	}
	s.Close()
}

// TestApplyFirstWins pins the first-wins key semantics replication relies
// on: a replicated verdict for a key the replica already decided cannot
// change the local answer.
func TestApplyFirstWins(t *testing.T) {
	dir := t.TempDir()
	replica, err := Open(filepath.Join(dir, "replica.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	replica.AppendVerdict("shared-key", true)
	replica.Flush()

	// An origin chunk carrying the opposite value for the same key (only a
	// corrupt or byzantine origin would produce this; the store must still
	// hold the line).
	payload := encodeVerdict("shared-key", false)
	chunk := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(chunk[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(chunk[4:8], crc32.ChecksumIEEE(payload))
	copy(chunk[headerLen:], payload)

	st, err := replica.ApplyReplicated(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 0 || st.Duplicates != 1 {
		t.Fatalf("conflicting record applied: %+v", st)
	}
	if v, ok := replica.LookupVerdict("shared-key"); !ok || v != true {
		t.Fatalf("local verdict changed: (%v,%v)", v, ok)
	}
}
