package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"spes/internal/fault"
)

func openT(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return s
}

func TestVerdictRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := openT(t, path)
	s.AppendVerdict("(and a b)", true)
	s.AppendVerdict("(or a b)", false)
	s.Flush()
	if v, ok := s.LookupVerdict("(and a b)"); !ok || !v {
		t.Fatalf("live lookup (and a b): got %v,%v", v, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, path)
	defer s2.Close()
	if v, ok := s2.LookupVerdict("(and a b)"); !ok || !v {
		t.Fatalf("reopen lookup (and a b): got %v,%v", v, ok)
	}
	if v, ok := s2.LookupVerdict("(or a b)"); !ok || v {
		t.Fatalf("reopen lookup (or a b): got %v,%v", v, ok)
	}
	if _, ok := s2.LookupVerdict("(not c)"); ok {
		t.Fatal("lookup of never-stored key hit")
	}
	st := s2.Snapshot()
	if st.Records != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWitnessRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	s := openT(t, path)
	s.AppendWitness("pair-1", []byte(`{"seed":7}`))
	s.AppendWitness("pair-1", []byte(`{"seed":8}`)) // duplicate key: first wins
	s.AppendWitness("", []byte("x"))                // no key: dropped silently
	s.AppendWitness("pair-2", nil)                  // no data: dropped silently
	s.Flush()
	if data, ok := s.LookupWitness("pair-1"); !ok || string(data) != `{"seed":7}` {
		t.Fatalf("live lookup pair-1: got %q,%v", data, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, path)
	defer s2.Close()
	if data, ok := s2.LookupWitness("pair-1"); !ok || string(data) != `{"seed":7}` {
		t.Fatalf("reopen lookup pair-1: got %q,%v", data, ok)
	}
	if _, ok := s2.LookupWitness("pair-2"); ok {
		t.Fatal("lookup of never-stored witness key hit")
	}
	// Witness records must not satisfy verdict lookups or vice versa.
	if _, ok := s2.LookupVerdict("pair-1"); ok {
		t.Fatal("witness record answered a verdict lookup")
	}
}

func TestLemmaRoundTripAndDedupe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.log")
	s := openT(t, path)
	l1 := []LemmaLit{{AtomKey: "(< x y)", Pos: true}, {AtomKey: "(= x y)", Pos: true}}
	s.AppendLemma(l1)
	// Same lemma, different literal order: must dedupe.
	s.AppendLemma([]LemmaLit{l1[1], l1[0]})
	// Different polarity: distinct lemma.
	s.AppendLemma([]LemmaLit{{AtomKey: "(< x y)", Pos: false}})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, path)
	defer s2.Close()
	ls := s2.Lemmas()
	if len(ls) != 2 {
		t.Fatalf("lemmas after reopen: got %d, want 2 (%v)", len(ls), ls)
	}
	if len(ls[0]) != 2 || ls[0][0].AtomKey != "(< x y)" || !ls[0][0].Pos {
		t.Fatalf("lemma 0 mangled: %v", ls[0])
	}
	// Re-appending a persisted lemma after reopen must still dedupe.
	s2.AppendLemma(l1)
	s2.Flush()
	if n := s2.Snapshot().Appends; n != 0 {
		t.Fatalf("reopened store appended %d duplicate lemmas", n)
	}
}

// TestTornTailTruncated cuts the log mid-record and proves reopen drops
// exactly the torn record, keeping everything before it.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.log")
	s := openT(t, path)
	s.AppendVerdict("keep-me", true)
	s.AppendVerdict("lose-me", true)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, path)
	defer s2.Close()
	if _, ok := s2.LookupVerdict("lose-me"); ok {
		t.Fatal("torn record survived reopen")
	}
	if v, ok := s2.LookupVerdict("keep-me"); !ok || !v {
		t.Fatal("intact record lost by tail truncation")
	}
	st := s2.Snapshot()
	if st.Records != 1 || st.TruncatedBytes == 0 {
		t.Fatalf("stats after truncation: %+v", st)
	}
}

// TestChecksumCorruptionLosesNeverFabricates flips bytes in a stored
// verdict's payload: the record (and the tail behind it) must vanish, and in
// particular a false verdict must never come back as true.
func TestChecksumCorruptionLosesNeverFabricates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.log")
	s := openT(t, path)
	s.AppendVerdict("first", true)
	s.AppendVerdict("target", false)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the second record: skip first record's header+payload.
	n0 := binary.BigEndian.Uint32(data[:4])
	off := headerLen + int(n0)
	// Flip the verdict byte (last byte of the second record's payload)
	// without touching its checksum.
	data[len(data)-1] = 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, path)
	if v, ok := s2.LookupVerdict("target"); ok && v {
		t.Fatal("corrupted verdict fabricated into valid")
	}
	if _, ok := s2.LookupVerdict("target"); ok {
		t.Fatal("checksum-failing record was indexed at all")
	}
	if v, ok := s2.LookupVerdict("first"); !ok || !v {
		t.Fatal("record before the corruption lost")
	}
	if got := s2.Snapshot().TruncatedBytes; got != int64(len(data)-off) {
		t.Fatalf("TruncatedBytes = %d, want %d", got, len(data)-off)
	}
	s2.Close()
}

// TestFaultTornAppend arms the store-append site so the writer panics
// between header and payload, then proves reopen truncates the torn tail
// cleanly and the surviving prefix is intact.
func TestFaultTornAppend(t *testing.T) {
	if fault.Enabled() {
		t.Skip("fault registry already armed")
	}
	path := filepath.Join(t.TempDir(), "fault.log")
	s := openT(t, path)
	s.AppendVerdict("before-fault", true)
	s.Flush()

	if err := fault.Enable(fault.Config{
		Seed:     1,
		PerMille: 1000,
		Sites:    []fault.Site{fault.StoreAppend},
		Kinds:    []fault.Kind{fault.KindPanic},
	}); err != nil {
		t.Fatal(err)
	}
	s.AppendVerdict("torn", false)
	s.Flush()
	fault.Disable()
	if s.Snapshot().Dropped == 0 {
		t.Fatal("injected panic did not register as a dropped append")
	}
	// Close without rewriting: the torn header must remain on disk so the
	// reopen actually exercises tail truncation.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, path)
	defer s2.Close()
	if info.Size() > s2.Snapshot().Bytes && s2.Snapshot().TruncatedBytes == 0 {
		t.Fatalf("torn tail (%d > %d bytes) not truncated", info.Size(), s2.Snapshot().Bytes)
	}
	if _, ok := s2.LookupVerdict("torn"); ok {
		t.Fatal("torn record resurrected")
	}
	if v, ok := s2.LookupVerdict("before-fault"); !ok || !v {
		t.Fatal("intact record lost")
	}
}

// TestFaultCancelSkipsWrite arms cancel at store-append: the record is
// skipped (fsync-skip analog), nothing corrupts, the store keeps working.
func TestFaultCancelSkipsWrite(t *testing.T) {
	if fault.Enabled() {
		t.Skip("fault registry already armed")
	}
	path := filepath.Join(t.TempDir(), "cancel.log")
	s := openT(t, path)
	if err := fault.Enable(fault.Config{
		Seed:     1,
		PerMille: 1000,
		Sites:    []fault.Site{fault.StoreAppend},
		Kinds:    []fault.Kind{fault.KindCancel},
	}); err != nil {
		t.Fatal(err)
	}
	s.AppendVerdict("skipped", true)
	s.Flush()
	fault.Disable()
	s.AppendVerdict("written", true)
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openT(t, path)
	defer s2.Close()
	if _, ok := s2.LookupVerdict("skipped"); ok {
		t.Fatal("cancelled append reached disk")
	}
	if v, ok := s2.LookupVerdict("written"); !ok || !v {
		t.Fatal("append after cancel lost")
	}
	if st := s2.Snapshot(); st.TruncatedBytes != 0 {
		t.Fatalf("cancel left a torn tail: %+v", st)
	}
}

func TestAppendAfterCloseDrops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.log")
	s := openT(t, path)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.AppendVerdict("late", true) // must not panic
	s.Flush()                     // must not block
	if _, ok := s.LookupVerdict("late"); ok {
		t.Fatal("closed store answered a lookup")
	}
}

func TestOpenDirCreates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	s.AppendVerdict("k", true)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "spes-verdicts.log")); err != nil {
		t.Fatalf("log file missing: %v", err)
	}
}
