// Package store is the durable warm state of a SPES process: an append-only
// log of proof obligations' verdicts and theory lemmas, plus an in-memory
// index over it, so restarts and new replicas start with the hit rates a
// long-lived process earned.
//
// Keys are interner-independent. A verdict record is keyed on the canonical
// serialization of its obligation formula (fol.Canonical / Term.Key), and a
// lemma record carries the canonical keys of its atoms — never interner IDs,
// which are dense per-epoch and meaningless across processes. The index
// buckets on a 64-bit FNV fingerprint of the key and confirms the full key
// by reading the record back before returning a verdict, preserving the
// repo-wide invariant that a hash collision can never substitute a
// different obligation's verdict.
//
// The log is crash-safe in the only direction that matters: records are
// length-prefixed and checksummed, and Open truncates the log at the first
// torn or corrupt record. Corruption can only LOSE verdicts (the process
// re-proves them); it can never fabricate one, because a record that fails
// its checksum is never indexed. The store-append fault site exercises the
// torn-write window deterministically.
//
// Only definite verdicts are stored — the same invariant the obligation
// cache enforces. Unknown is a budget artifact, not a fact about the
// obligation, and must be re-derived by whoever has budget to spend.
package store

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"spes/internal/fault"
)

// record kinds (first payload byte).
const (
	recVerdict = 'V'
	recLemma   = 'L'
	recWitness = 'W'
)

// headerLen is the fixed per-record framing: 4-byte big-endian payload
// length followed by a 4-byte CRC32 (IEEE) of the payload.
const headerLen = 8

// maxRecordLen rejects absurd length prefixes on open, so a corrupt length
// cannot make the scanner allocate gigabytes or swallow the rest of the log
// as one "record".
const maxRecordLen = 1 << 24

// LemmaLit is one literal of a persisted theory lemma: the canonical key of
// its atom and its polarity. The lemma itself is the clause
// ¬(l1 ∧ … ∧ lk) — a theory-valid fact independent of any formula.
type LemmaLit struct {
	AtomKey string
	Pos     bool
}

// ref locates one record's payload in the log.
type ref struct {
	off int64
	n   int
}

// Stats counts store traffic since Open. Reads are atomic under the store
// mutex; Snapshot copies them out.
type Stats struct {
	// Records and Bytes describe the log as scanned at Open plus appends
	// since (Bytes includes framing).
	Records int64
	Bytes   int64
	// TruncatedBytes is how much torn/corrupt tail Open cut off.
	TruncatedBytes int64
	// Hits and Misses count LookupVerdict outcomes.
	Hits   int64
	Misses int64
	// Appends counts records durably written; Dropped counts appends lost
	// to a full write-behind queue, an injected fault, or a closed store.
	Appends int64
	Dropped int64
}

// Store is safe for concurrent use. Lookups hit the in-memory index and
// confirm against the file with ReadAt; appends go through a write-behind
// queue drained by one writer goroutine, so the solver path never blocks on
// the disk.
type Store struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64
	index   map[uint64][]ref // verdict records only, FNV(key) → refs
	witness map[uint64][]ref // witness records only, FNV(pair key) → refs
	lemmas  []LemmaLit       // flattened lemma literals...
	lemmaN  []int            // ...with per-lemma lengths, in log order
	lemmaFP map[uint64]bool  // order-independent lemma dedupe
	stats   Stats
	closed  bool

	// Segment accumulator (see segment.go): sealed segments over the
	// durable prefix, plus the running CRC and start offset of the open
	// (unsealed) tail segment. All guarded by mu.
	segs     []Segment
	segStart int64
	segCRC   uint32

	queue chan pending
	done  chan struct{}
}

type pending struct {
	payload []byte
	key     string        // key to index after a durable write; "" for lemmas
	kind    byte          // which index the key belongs to (recVerdict or recWitness)
	ackCh   chan struct{} // Flush sentinel: nil payload, close on receipt
}

// queueDepth bounds the write-behind queue. A full queue drops the append —
// losing a verdict is sound, blocking a verification worker is not.
const queueDepth = 1024

// Open opens (creating if needed) the verdict log at path, scans it,
// truncates any torn tail, and builds the in-memory index. The parent
// directory must exist.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		f:       f,
		path:    path,
		index:   make(map[uint64][]ref),
		witness: make(map[uint64][]ref),
		lemmaFP: make(map[uint64]bool),
		queue:   make(chan pending, queueDepth),
		done:    make(chan struct{}),
	}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	go s.writer()
	return s, nil
}

// OpenDir opens the canonical log file name inside dir, creating dir if
// needed. This is the entry point servers and benches use.
func OpenDir(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return Open(filepath.Join(dir, "spes-verdicts.log"))
}

// Path returns the log file path.
func (s *Store) Path() string { return s.path }

// scan replays the log, indexing verdict records and collecting lemmas.
// It stops at — and truncates — the first record that is torn (short
// header/payload) or fails its checksum: everything after a torn record is
// unframed noise, and a half-written record must not survive a restart to
// be half-read again by the next.
func (s *Store) scan() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	total := info.Size()
	var off int64
	hdr := make([]byte, headerLen)
	for off < total {
		if total-off < headerLen {
			break // torn header
		}
		if _, err := s.f.ReadAt(hdr, off); err != nil {
			return err
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n == 0 || n > maxRecordLen || off+headerLen+int64(n) > total {
			break // torn or absurd payload
		}
		payload := make([]byte, n)
		if _, err := s.f.ReadAt(payload, off+headerLen); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record: drop it and everything after
		}
		s.indexPayload(payload, ref{off: off + headerLen, n: int(n)})
		off += headerLen + int64(n)
		s.noteDurableLocked(off, hdr, payload)
		s.stats.Records++
	}
	if off < total {
		s.stats.TruncatedBytes = total - off
		if err := s.f.Truncate(off); err != nil {
			return err
		}
	}
	s.size = off
	s.stats.Bytes = off
	_, err = s.f.Seek(off, io.SeekStart)
	return err
}

// indexPayload registers one verified record. Malformed payloads that pass
// the checksum (a bug, not corruption) are skipped rather than trusted.
func (s *Store) indexPayload(payload []byte, r ref) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case recVerdict:
		key, _, ok := decodeVerdict(payload)
		if !ok {
			return
		}
		fp := fnv64(key)
		s.index[fp] = append(s.index[fp], r)
	case recWitness:
		key, _, ok := decodeWitness(payload)
		if !ok {
			return
		}
		fp := fnv64(key)
		s.witness[fp] = append(s.witness[fp], r)
	case recLemma:
		lits, ok := decodeLemma(payload)
		if !ok {
			return
		}
		fp := lemmaFingerprint(lits)
		if s.lemmaFP[fp] {
			return
		}
		s.lemmaFP[fp] = true
		s.lemmas = append(s.lemmas, lits...)
		s.lemmaN = append(s.lemmaN, len(lits))
	}
}

// LookupVerdict returns the stored verdict for the canonical obligation key,
// if any. The index buckets on a 64-bit fingerprint; every candidate is
// confirmed by reading its record back and comparing the full key, so a
// fingerprint collision degrades to a read, never to a wrong verdict.
func (s *Store) LookupVerdict(key string) (valid, ok bool) {
	fp := fnv64(key)
	s.mu.Lock()
	refs := s.index[fp]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return false, false
	}
	for _, r := range refs {
		payload := make([]byte, r.n)
		if _, err := s.f.ReadAt(payload, r.off); err != nil {
			break
		}
		k, v, good := decodeVerdict(payload)
		if good && k == key {
			s.mu.Lock()
			s.stats.Hits++
			s.mu.Unlock()
			return v, true
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	return false, false
}

// AppendVerdict queues a definite verdict for the canonical obligation key.
// The write is behind: it may be lost to a crash or a full queue, which only
// costs a future re-proof. Duplicate keys are skipped best-effort (the log
// is append-only; the first record for a key wins on lookup anyway).
func (s *Store) AppendVerdict(key string, valid bool) {
	fp := fnv64(key)
	s.mu.Lock()
	known := len(s.index[fp]) > 0
	s.mu.Unlock()
	if known {
		if v, ok := s.LookupVerdict(key); ok && v == valid {
			return
		}
	}
	s.enqueue(pending{payload: encodeVerdict(key, valid), key: key, kind: recVerdict})
}

// LookupWitness returns the stored counterexample witness bytes for a
// normalized pair key, if any. Like LookupVerdict, candidates are confirmed
// by reading the full key back, so a fingerprint collision degrades to a
// read. The store does not interpret the bytes; callers must replay the
// decoded witness against the pair before trusting it — corruption here can
// only lose a witness (the pair is re-refuted), never fabricate one.
func (s *Store) LookupWitness(key string) ([]byte, bool) {
	fp := fnv64(key)
	s.mu.Lock()
	refs := s.witness[fp]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, false
	}
	for _, r := range refs {
		payload := make([]byte, r.n)
		if _, err := s.f.ReadAt(payload, r.off); err != nil {
			break
		}
		k, data, good := decodeWitness(payload)
		if good && k == key {
			s.mu.Lock()
			s.stats.Hits++
			s.mu.Unlock()
			return data, true
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	return nil, false
}

// AppendWitness queues a counterexample witness for a normalized pair key.
// Same write-behind contract as AppendVerdict: a crash or full queue loses
// the record and costs a future re-search, nothing more. The first stored
// witness for a key wins on lookup; duplicates are skipped best-effort.
func (s *Store) AppendWitness(key string, data []byte) {
	if key == "" || len(data) == 0 {
		return
	}
	fp := fnv64(key)
	s.mu.Lock()
	known := len(s.witness[fp]) > 0
	s.mu.Unlock()
	if known {
		if _, ok := s.LookupWitness(key); ok {
			return
		}
	}
	s.enqueue(pending{payload: encodeWitness(key, data), key: key, kind: recWitness})
}

// AppendLemma queues a theory lemma (the blocked core l1 ∧ … ∧ lk, i.e. the
// clause ¬l1 ∨ … ∨ ¬lk) for persistence. Order-independent dedupe keeps the
// log from filling with the same hot lemma.
func (s *Store) AppendLemma(lits []LemmaLit) {
	if len(lits) == 0 {
		return
	}
	fp := lemmaFingerprint(lits)
	s.mu.Lock()
	dup := s.lemmaFP[fp]
	if !dup {
		s.lemmaFP[fp] = true
	}
	s.mu.Unlock()
	if dup {
		return
	}
	s.enqueue(pending{payload: encodeLemma(lits)})
}

// Lemmas returns every persisted lemma, in log order. The slices are fresh
// copies; callers may keep them.
func (s *Store) Lemmas() [][]LemmaLit {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]LemmaLit, 0, len(s.lemmaN))
	i := 0
	for _, n := range s.lemmaN {
		lemma := make([]LemmaLit, n)
		copy(lemma, s.lemmas[i:i+n])
		out = append(out, lemma)
		i += n
	}
	return out
}

func (s *Store) enqueue(p pending) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		s.drop()
		return
	}
	select {
	case s.queue <- p:
	default:
		s.drop() // full queue: losing the record is sound, blocking is not
	}
}

func (s *Store) drop() {
	s.mu.Lock()
	s.stats.Dropped++
	s.mu.Unlock()
}

// writer drains the write-behind queue. Injected faults at store-append are
// confined here: a panic tears the current record (recovered, writer keeps
// going), a cancel skips the write. Both only lose the record.
func (s *Store) writer() {
	defer close(s.done)
	for p := range s.queue {
		if p.payload == nil {
			if p.ackCh != nil {
				close(p.ackCh)
			}
			continue
		}
		s.writeOne(p)
	}
}

// writeOne durably writes one record, reporting whether it landed (false:
// dropped to a fault, a write error, or a closed store).
func (s *Store) writeOne(p pending) (wrote bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*fault.Error); !ok {
				panic(r) // a real bug: do not swallow it
			}
			s.drop()
			wrote = false
		}
	}()
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(p.payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(p.payload))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.stats.Dropped++
		return false
	}
	off := s.size
	if _, err := s.f.WriteAt(hdr, off); err != nil {
		s.stats.Dropped++
		return false
	}
	// The torn-write window: header on disk, payload not yet. A panic here
	// leaves exactly the tail scan() truncates; a cancel models a skipped
	// fsync — the record is abandoned and the header overwritten by the
	// next append.
	switch fault.Inject(fault.StoreAppend) {
	case fault.Cancel:
		s.stats.Dropped++
		return false
	}
	if _, err := s.f.WriteAt(p.payload, off+headerLen); err != nil {
		s.stats.Dropped++
		return false
	}
	s.size = off + headerLen + int64(len(p.payload))
	s.stats.Records++
	s.stats.Bytes = s.size
	s.stats.Appends++
	s.noteDurableLocked(s.size, hdr, p.payload)
	if p.key != "" {
		fp := fnv64(p.key)
		r := ref{off: off + headerLen, n: len(p.payload)}
		switch p.kind {
		case recWitness:
			s.witness[fp] = append(s.witness[fp], r)
		default:
			s.index[fp] = append(s.index[fp], r)
		}
	}
	return true
}

// Flush blocks until every append queued before the call is durably written
// (or dropped): it rides a sentinel through the FIFO queue and waits for the
// writer to reach it. It exists for tests and for Close.
func (s *Store) Flush() {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	ack := make(chan struct{})
	select {
	case s.queue <- pending{ackCh: ack}:
		select {
		case <-ack:
		case <-s.done:
		}
	case <-s.done:
	}
}

// Close flushes the queue and closes the file. Further lookups miss and
// further appends drop.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	s.Flush()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Snapshot copies the stats out.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// --- record encoding -------------------------------------------------------

// encodeVerdict: 'V' | uvarint(len(key)) | key | verdictByte.
func encodeVerdict(key string, valid bool) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(key)+1)
	buf = append(buf, recVerdict)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	if valid {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func decodeVerdict(payload []byte) (key string, valid, ok bool) {
	if len(payload) < 3 || payload[0] != recVerdict {
		return "", false, false
	}
	rest := payload[1:]
	n, w := binary.Uvarint(rest)
	if w <= 0 || n >= maxRecordLen || uint64(len(rest)-w) < n+1 {
		return "", false, false
	}
	rest = rest[w:]
	key = string(rest[:n])
	v := rest[n]
	if v > 1 || len(rest) != int(n)+1 {
		return "", false, false
	}
	return key, v == 1, true
}

// encodeWitness: 'W' | uvarint(len(key)) | key | data. The data bytes are
// opaque to the store (the refute package's serialized witness).
func encodeWitness(key string, data []byte) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(key)+len(data))
	buf = append(buf, recWitness)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = append(buf, data...)
	return buf
}

func decodeWitness(payload []byte) (key string, data []byte, ok bool) {
	if len(payload) < 3 || payload[0] != recWitness {
		return "", nil, false
	}
	rest := payload[1:]
	n, w := binary.Uvarint(rest)
	if w <= 0 || n >= maxRecordLen || uint64(len(rest)-w) < n+1 {
		return "", nil, false
	}
	rest = rest[w:]
	return string(rest[:n]), rest[n:], true
}

// encodeLemma: 'L' | uvarint(k) | k × (uvarint(len(key)) | key | polByte).
func encodeLemma(lits []LemmaLit) []byte {
	size := 2 + binary.MaxVarintLen64
	for _, l := range lits {
		size += binary.MaxVarintLen64 + len(l.AtomKey) + 1
	}
	buf := make([]byte, 0, size)
	buf = append(buf, recLemma)
	buf = binary.AppendUvarint(buf, uint64(len(lits)))
	for _, l := range lits {
		buf = binary.AppendUvarint(buf, uint64(len(l.AtomKey)))
		buf = append(buf, l.AtomKey...)
		if l.Pos {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

func decodeLemma(payload []byte) ([]LemmaLit, bool) {
	if len(payload) < 2 || payload[0] != recLemma {
		return nil, false
	}
	rest := payload[1:]
	k, w := binary.Uvarint(rest)
	if w <= 0 || k == 0 || k > 1<<16 {
		return nil, false
	}
	rest = rest[w:]
	lits := make([]LemmaLit, 0, k)
	for i := uint64(0); i < k; i++ {
		n, w := binary.Uvarint(rest)
		if w <= 0 || n >= maxRecordLen || uint64(len(rest)-w) < n+1 {
			return nil, false
		}
		rest = rest[w:]
		key := string(rest[:n])
		pol := rest[n]
		if pol > 1 {
			return nil, false
		}
		rest = rest[n+1:]
		lits = append(lits, LemmaLit{AtomKey: key, Pos: pol == 1})
	}
	if len(rest) != 0 {
		return nil, false
	}
	return lits, true
}

// --- hashing ---------------------------------------------------------------

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// lemmaFingerprint is order-independent over the literals (XOR of per-lit
// hashes), matching the solver-side lemma dedupe.
func lemmaFingerprint(lits []LemmaLit) uint64 {
	var fp uint64
	for _, l := range lits {
		h := fnv64(l.AtomKey)
		if l.Pos {
			h = (h ^ 0x9e3779b97f4a7c15) * fnvPrime64
		}
		fp ^= h
	}
	if fp == 0 {
		fp = 1
	}
	return fp
}
