// Package fault is a deterministic fault-injection registry for chaos
// testing the verification pipeline. Production code marks its
// soundness-critical boundaries with named sites (Inject calls); a test
// or an operator arms some or all of those sites with a seeded plan that
// injects panics, delays, and cancellation requests at a configured
// rate. The whole schedule is a pure function of (seed, site, sequence
// number), so a failing chaos run replays exactly under the same seed.
//
// When injection is disabled — the default, and the only state
// production ever runs in — Inject is a single atomic pointer load and a
// predictable branch, so the sites compile down to no-ops in practice.
//
// Soundness: a fault can only ever panic (recovered into a NotProved
// internal-error verdict by the engine and server layers), sleep
// (degrading latency, and eventually tripping deadlines or the
// watchdog), or request cancellation (degrading the verdict to
// NotProved). No fault kind can manufacture an Equivalent verdict; the
// chaos suite enforces that end to end with differential re-execution.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names one injection point in the pipeline.
type Site string

// The registered sites. Each one marks a boundary where PR 3's
// robustness layer must degrade, never die.
const (
	// Normalize fires inside the engine worker's normalization step.
	Normalize Site = "normalize"
	// VeriSPJ fires at the top of the verifier's SPJ procedure (Alg. 3),
	// the hot verification path.
	VeriSPJ Site = "veri-spj"
	// SMTModelRound fires in the SMT solver's lazy DPLL(T) model-round
	// loop, the innermost budget-checked loop of a proof.
	SMTModelRound Site = "smt-model-round"
	// CoalesceLeader fires in the server coalescer between claiming a
	// flight and publishing its result — the window where a crash used to
	// strand every waiter.
	CoalesceLeader Site = "coalesce-leader"
	// WorkerSpawn fires when the engine constructs a per-goroutine
	// worker.
	WorkerSpawn Site = "worker-spawn"
	// SMTPushPop fires in an incremental solver session between the pushed
	// prefix and a suffix check — the window where an abort must leave the
	// session unusable for that query yet leak nothing into the next pair.
	SMTPushPop Site = "smt-push-pop"
	// StoreAppend fires in the durable verdict store between writing a
	// record's header and its payload — the torn-write window. A panic here
	// leaves a truncatable tail; a cancel skips the write entirely (the
	// fsync-skip analog). Either way the store may lose the record but can
	// never corrupt one into a different verdict.
	StoreAppend Site = "store-append"
	// RouterForward fires in the cluster router between picking a shard off
	// the ring and forwarding a sub-batch to it — the window where a shard
	// can die mid-batch. A panic or cancel here is treated as a transport
	// failure: the router fails the sub-batch over to the ring successor,
	// which re-verifies the pairs (sound because verdicts are deterministic
	// functions of the plans; a re-verified pair returns the same answer).
	RouterForward Site = "router-forward"
	// RefuteSearch fires inside the bounded refutation pass, between
	// generating a candidate database and executing the plans over it. A
	// panic or cancel here aborts the search for that pair, degrading a
	// would-be Refuted verdict to NotProved — a fault can lose a witness
	// but can never fabricate one, because every witness that IS returned
	// has already re-executed both plans and observed differing bags.
	RefuteSearch Site = "refute-search"
	// ConstraintAxioms fires in the verifier as it conjoins the catalog's
	// integrity-constraint axioms (key functional dependencies, FK
	// referential containment) into a table's symbolic condition. A panic
	// here unwinds the whole pair into the engine's NotProved recovery; a
	// cancel makes the verifier skip ALL axioms for that table scan. Both
	// only ever weaken the premises of later obligations, so a fault can
	// lose a constraint-dependent proof but can never produce a verdict
	// that leans on a partially-constructed axiom set: each axiom is built
	// whole before it is conjoined, and the site fires before any of them.
	ConstraintAxioms Site = "constraint-axioms"
	// StoreReplicate fires in the replication tailer between fetching a
	// chunk of a peer's log and applying its records to the local store. A
	// panic or cancel here drops the chunk unapplied; the tail position does
	// not advance, so the next round re-fetches the same bytes. Replication
	// is write-behind warm state, not truth: a fault can delay or lose
	// replicated verdicts (the shard re-proves them), but every record that
	// IS applied passed its own checksum and the first-wins key dedupe, so a
	// fault can never fabricate or overwrite a verdict.
	StoreReplicate Site = "store-replicate"
)

// Sites returns every registered site, in stable order.
func Sites() []Site {
	return []Site{Normalize, VeriSPJ, SMTModelRound, CoalesceLeader, WorkerSpawn, SMTPushPop, StoreAppend, RouterForward, RefuteSearch, ConstraintAxioms, StoreReplicate}
}

// Kind is the species of an injected fault.
type Kind int

const (
	// KindPanic makes Inject panic with an *Error.
	KindPanic Kind = iota
	// KindDelay makes Inject sleep for the configured Delay.
	KindDelay
	// KindCancel makes Inject return Cancel; sites that hold a context
	// treat it as that context being cancelled, sites that do not simply
	// ignore it (documented per call site).
	KindCancel
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCancel:
		return "cancel"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Outcome is what Inject asks of its caller. Panics and delays are
// executed by Inject itself, so None and Cancel are the only values.
type Outcome int

const (
	// None means no fault (or a fault Inject already executed itself).
	None Outcome = iota
	// Cancel asks the caller to behave as if its context were cancelled.
	Cancel
)

// Error is the panic value of every injected panic, so recovery layers
// and tests can tell injected faults from genuine bugs.
type Error struct {
	Site Site
	Seq  uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected panic at site %s (seq %d)", e.Site, e.Seq)
}

// Config arms the registry.
type Config struct {
	// Seed drives the deterministic schedule; the same seed over the same
	// per-site call sequence fires the same faults.
	Seed uint64
	// PerMille is how many evaluations per thousand fire a fault at each
	// armed site (clamped to [0, 1000]).
	PerMille int
	// Delay is the sleep length of a delay fault (default 1ms).
	Delay time.Duration
	// Sites lists the armed sites; nil arms all of them.
	Sites []Site
	// Kinds lists the fault kinds to draw from; nil means all three.
	Kinds []Kind
}

// state is the immutable armed configuration; swapped atomically so
// Inject never takes a lock.
type state struct {
	cfg   Config
	kinds []Kind
	sites map[Site]*siteState
}

type siteState struct {
	seq   atomic.Uint64
	fired [numKinds]atomic.Uint64
}

var current atomic.Pointer[state]

// Enable arms the registry. It returns an error for unknown sites or
// kinds, an out-of-range rate, or a nil effective kind set.
func Enable(cfg Config) error {
	known := map[Site]bool{}
	for _, s := range Sites() {
		known[s] = true
	}
	armed := cfg.Sites
	if len(armed) == 0 {
		armed = Sites()
	}
	st := &state{cfg: cfg, sites: map[Site]*siteState{}}
	for _, s := range armed {
		if !known[s] {
			return fmt.Errorf("fault: unknown site %q", s)
		}
		st.sites[s] = &siteState{}
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindPanic, KindDelay, KindCancel}
	}
	for _, k := range kinds {
		if k < 0 || k >= numKinds {
			return fmt.Errorf("fault: unknown kind %d", int(k))
		}
	}
	st.kinds = kinds
	if cfg.PerMille < 0 || cfg.PerMille > 1000 {
		return fmt.Errorf("fault: rate %d out of [0,1000]", cfg.PerMille)
	}
	if st.cfg.Delay <= 0 {
		st.cfg.Delay = time.Millisecond
	}
	current.Store(st)
	return nil
}

// Disable disarms every site. Faults already sleeping finish their
// sleep; nothing else fires.
func Disable() { current.Store(nil) }

// Enabled reports whether any site is armed.
func Enabled() bool { return current.Load() != nil }

// Inject evaluates one pass through the site. Disabled (the production
// state), it is one atomic load. Armed, it deterministically either does
// nothing, panics with an *Error, sleeps for the configured delay, or
// returns Cancel for the caller to honor.
func Inject(site Site) Outcome {
	st := current.Load()
	if st == nil {
		return None
	}
	ss, ok := st.sites[site]
	if !ok {
		return None
	}
	seq := ss.seq.Add(1)
	h := mix(st.cfg.Seed, site, seq)
	if h%1000 >= uint64(st.cfg.PerMille) {
		return None
	}
	kind := st.kinds[(h/1000)%uint64(len(st.kinds))]
	ss.fired[kind].Add(1)
	switch kind {
	case KindPanic:
		panic(&Error{Site: site, Seq: seq})
	case KindDelay:
		time.Sleep(st.cfg.Delay)
		return None
	default:
		return Cancel
	}
}

// mix is splitmix64 over the seed, the site name, and the sequence
// number — cheap, well-distributed, and stable across runs.
func mix(seed uint64, site Site, seq uint64) uint64 {
	x := seed ^ seq
	for i := 0; i < len(site); i++ {
		x = x*1099511628211 + uint64(site[i])
	}
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fired returns how many faults (of any kind) have fired at the site
// since it was last armed; 0 when disarmed.
func Fired(site Site) uint64 {
	st := current.Load()
	if st == nil {
		return 0
	}
	ss, ok := st.sites[site]
	if !ok {
		return 0
	}
	var n uint64
	for k := range ss.fired {
		n += ss.fired[k].Load()
	}
	return n
}

// Snapshot returns fired counts per armed site and kind (for test
// assertions that every site actually saw faults).
func Snapshot() map[Site]map[string]uint64 {
	st := current.Load()
	if st == nil {
		return nil
	}
	out := map[Site]map[string]uint64{}
	for s, ss := range st.sites {
		m := map[string]uint64{}
		for k := Kind(0); k < numKinds; k++ {
			if n := ss.fired[k].Load(); n > 0 {
				m[k.String()] = n
			}
		}
		out[s] = m
	}
	return out
}

// ParseSpec parses the operator-facing spec string used by the
// spes-serve -faults flag and the SPES_FAULTS environment variable:
//
//	seed=7,rate=25,delay=2ms,sites=normalize|smt-model-round,kinds=panic|delay
//
// Every field is optional; rate defaults to 10 per mille, sites and
// kinds to all.
func ParseSpec(spec string) (Config, error) {
	cfg := Config{PerMille: 10}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("fault: malformed field %q (want key=value)", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("fault: seed: %v", err)
			}
			cfg.Seed = n
		case "rate":
			n, err := strconv.Atoi(v)
			if err != nil {
				return cfg, fmt.Errorf("fault: rate: %v", err)
			}
			cfg.PerMille = n
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("fault: delay: %v", err)
			}
			cfg.Delay = d
		case "sites":
			for _, s := range strings.Split(v, "|") {
				cfg.Sites = append(cfg.Sites, Site(s))
			}
		case "kinds":
			for _, s := range strings.Split(v, "|") {
				switch s {
				case "panic":
					cfg.Kinds = append(cfg.Kinds, KindPanic)
				case "delay":
					cfg.Kinds = append(cfg.Kinds, KindDelay)
				case "cancel":
					cfg.Kinds = append(cfg.Kinds, KindCancel)
				default:
					return cfg, fmt.Errorf("fault: unknown kind %q", s)
				}
			}
		default:
			return cfg, fmt.Errorf("fault: unknown field %q", k)
		}
	}
	return cfg, nil
}

// EnableSpec parses and arms a spec string in one step.
func EnableSpec(spec string) error {
	cfg, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	return Enable(cfg)
}

// Describe renders the armed configuration for logs.
func Describe() string {
	st := current.Load()
	if st == nil {
		return "disabled"
	}
	sites := make([]string, 0, len(st.sites))
	for s := range st.sites {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	kinds := make([]string, len(st.kinds))
	for i, k := range st.kinds {
		kinds[i] = k.String()
	}
	return fmt.Sprintf("seed=%d rate=%d/1000 delay=%v sites=%s kinds=%s",
		st.cfg.Seed, st.cfg.PerMille, st.cfg.Delay,
		strings.Join(sites, "|"), strings.Join(kinds, "|"))
}
