package fault

import (
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	for i := 0; i < 1000; i++ {
		for _, s := range Sites() {
			if Inject(s) != None {
				t.Fatalf("disabled Inject(%s) fired", s)
			}
		}
	}
	if Snapshot() != nil {
		t.Fatal("Snapshot non-nil while disabled")
	}
}

// drive runs n evaluations at site and returns the observed schedule:
// which sequence numbers panicked, cancelled, or just returned.
func drive(t *testing.T, site Site, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(*Error); !ok {
						t.Fatalf("panic value %T, want *Error", p)
					}
					out = append(out, "panic")
				}
			}()
			switch Inject(site) {
			case Cancel:
				out = append(out, "cancel")
			default:
				out = append(out, "none")
			}
		}()
	}
	return out
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, PerMille: 300, Delay: time.Microsecond}
	if err := Enable(cfg); err != nil {
		t.Fatal(err)
	}
	a := drive(t, SMTModelRound, 500)
	if err := Enable(cfg); err != nil { // re-arm: counters reset, same seed
		t.Fatal(err)
	}
	b := drive(t, SMTModelRound, 500)
	Disable()

	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %q vs %q", i, a[i], b[i])
		}
		if a[i] != "none" {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("rate 300/1000 over 500 evaluations fired nothing")
	}
	// A different seed must give a different schedule.
	cfg.Seed = 43
	if err := Enable(cfg); err != nil {
		t.Fatal(err)
	}
	c := drive(t, SMTModelRound, 500)
	Disable()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestSiteFiltering(t *testing.T) {
	if err := Enable(Config{Seed: 1, PerMille: 1000, Sites: []Site{Normalize}, Kinds: []Kind{KindCancel}}); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	if got := Inject(VeriSPJ); got != None {
		t.Fatalf("unarmed site fired: %v", got)
	}
	if got := Inject(Normalize); got != Cancel {
		t.Fatalf("armed cancel-only site returned %v", got)
	}
	if Fired(Normalize) != 1 || Fired(VeriSPJ) != 0 {
		t.Fatalf("fired counts: normalize=%d veri-spj=%d", Fired(Normalize), Fired(VeriSPJ))
	}
	snap := Snapshot()
	if snap[Normalize]["cancel"] != 1 {
		t.Fatalf("snapshot: %v", snap)
	}
}

func TestEnableRejectsBadConfig(t *testing.T) {
	if err := Enable(Config{Sites: []Site{"no-such-site"}}); err == nil {
		t.Error("unknown site accepted")
	}
	if err := Enable(Config{PerMille: 2000}); err == nil {
		t.Error("rate 2000 accepted")
	}
	if err := Enable(Config{Kinds: []Kind{Kind(99)}}); err == nil {
		t.Error("unknown kind accepted")
	}
	Disable()
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,rate=25,delay=2ms,sites=normalize|smt-model-round,kinds=panic|delay")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.PerMille != 25 || cfg.Delay != 2*time.Millisecond {
		t.Fatalf("cfg = %+v", cfg)
	}
	if len(cfg.Sites) != 2 || cfg.Sites[0] != Normalize || cfg.Sites[1] != SMTModelRound {
		t.Fatalf("sites = %v", cfg.Sites)
	}
	if len(cfg.Kinds) != 2 || cfg.Kinds[0] != KindPanic || cfg.Kinds[1] != KindDelay {
		t.Fatalf("kinds = %v", cfg.Kinds)
	}
	if _, err := ParseSpec("rate=abc"); err == nil {
		t.Error("bad rate accepted")
	}
	if _, err := ParseSpec("kinds=explode"); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := ParseSpec("nonsense"); err == nil {
		t.Error("field without '=' accepted")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.PerMille != 10 {
		t.Errorf("empty spec: cfg=%+v err=%v", cfg, err)
	}
}
