package corpus

import (
	"fmt"

	"spes/internal/schema"
)

// ConstraintCatalog returns the benchmark schema with the integrity
// constraints the constraint-dependent tier relies on declared:
//
//   - EMP.DEPT_ID is NOT NULL and a FOREIGN KEY into DEPT(DEPT_ID);
//   - EMP.ENAME is NOT NULL and UNIQUE; EMP.LOCATION is NOT NULL;
//   - BONUS.EMP_ID is a FOREIGN KEY into EMP(EMP_ID);
//   - ACCOUNT.EMP_ID is a (nullable) FOREIGN KEY into EMP(EMP_ID).
//
// Catalog() is its constraint-free twin: identical tables, columns, and
// primary keys, none of the constraints above. Every ConstraintPairs pair
// is equivalent under this catalog and unprovable (indeed, generally
// inequivalent) under Catalog() — the paired-catalog design is what the
// acceptance tests and the cross-contamination CI stage verify against.
func ConstraintCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	mustAdd := func(t *schema.Table) {
		if err := cat.AddTable(t); err != nil {
			panic(err)
		}
	}
	mustAdd(&schema.Table{
		Name: "EMP",
		Columns: []schema.Column{
			{Name: "EMP_ID", Type: schema.Int, NotNull: true},
			{Name: "ENAME", Type: schema.String, NotNull: true},
			{Name: "SALARY", Type: schema.Int},
			{Name: "DEPT_ID", Type: schema.Int, NotNull: true},
			{Name: "LOCATION", Type: schema.String, NotNull: true},
			{Name: "MGR_ID", Type: schema.Int},
		},
		PrimaryKey: []string{"EMP_ID"},
		Unique:     [][]string{{"ENAME"}},
		ForeignKeys: []schema.ForeignKey{
			{Columns: []string{"DEPT_ID"}, ParentTable: "DEPT", ParentColumns: []string{"DEPT_ID"}},
		},
	})
	mustAdd(&schema.Table{
		Name: "DEPT",
		Columns: []schema.Column{
			{Name: "DEPT_ID", Type: schema.Int, NotNull: true},
			{Name: "DEPT_NAME", Type: schema.String},
			{Name: "BUDGET", Type: schema.Int},
		},
		PrimaryKey: []string{"DEPT_ID"},
	})
	mustAdd(&schema.Table{
		Name: "BONUS",
		Columns: []schema.Column{
			{Name: "EMP_ID", Type: schema.Int, NotNull: true},
			{Name: "AMOUNT", Type: schema.Int},
			{Name: "YEAR", Type: schema.Int},
		},
		ForeignKeys: []schema.ForeignKey{
			{Columns: []string{"EMP_ID"}, ParentTable: "EMP", ParentColumns: []string{"EMP_ID"}},
		},
	})
	mustAdd(&schema.Table{
		Name: "ACCOUNT",
		Columns: []schema.Column{
			{Name: "ACCT_ID", Type: schema.Int, NotNull: true},
			{Name: "EMP_ID", Type: schema.Int},
			{Name: "BALANCE", Type: schema.Int},
		},
		PrimaryKey: []string{"ACCT_ID"},
		ForeignKeys: []schema.ForeignKey{
			{Columns: []string{"EMP_ID"}, ParentTable: "EMP", ParentColumns: []string{"EMP_ID"}},
		},
	})
	if err := cat.CheckForeignKeys(); err != nil {
		panic(err)
	}
	return cat
}

// ConstraintDDL is ConstraintCatalog as DDL, for harnesses that feed a
// schema file to the server or CLI (the CI cross-contamination stage).
// Parsing it must yield a catalog with the same constraint digest as
// ConstraintCatalog() — the corpus tests pin this.
const ConstraintDDL = `
CREATE TABLE EMP (
  EMP_ID INT PRIMARY KEY,
  ENAME VARCHAR NOT NULL UNIQUE,
  SALARY INT,
  DEPT_ID INT NOT NULL REFERENCES DEPT (DEPT_ID),
  LOCATION VARCHAR NOT NULL,
  MGR_ID INT
);
CREATE TABLE DEPT (
  DEPT_ID INT PRIMARY KEY,
  DEPT_NAME VARCHAR,
  BUDGET INT
);
CREATE TABLE BONUS (
  EMP_ID INT NOT NULL,
  AMOUNT INT,
  YEAR INT,
  FOREIGN KEY (EMP_ID) REFERENCES EMP (EMP_ID)
);
CREATE TABLE ACCOUNT (
  ACCT_ID INT PRIMARY KEY,
  EMP_ID INT REFERENCES EMP (EMP_ID),
  BALANCE INT
);
`

// BaseDDL is Catalog() — the constraint-free twin — as DDL.
const BaseDDL = `
CREATE TABLE EMP (
  EMP_ID INT PRIMARY KEY,
  ENAME VARCHAR,
  SALARY INT,
  DEPT_ID INT,
  LOCATION VARCHAR,
  MGR_ID INT
);
CREATE TABLE DEPT (
  DEPT_ID INT PRIMARY KEY,
  DEPT_NAME VARCHAR,
  BUDGET INT
);
CREATE TABLE BONUS (
  EMP_ID INT NOT NULL,
  AMOUNT INT,
  YEAR INT
);
CREATE TABLE ACCOUNT (
  ACCT_ID INT PRIMARY KEY,
  EMP_ID INT,
  BALANCE INT
);
`

// ConstraintPairs returns the constraint-dependent tier: pairs whose
// equivalence holds only because of an integrity constraint
// ConstraintCatalog declares, exercising the three constraint-aware proof
// capabilities end to end:
//
//   - JoinElimFK: a PK/FK join whose parent contributes no columns is
//     eliminated (nullable FKs leave an IS NOT NULL residual);
//   - DistinctOnUnique: DISTINCT over a NOT NULL UNIQUE key is a no-op;
//   - NotNullPrune: an IS NOT NULL filter on a NOT NULL column is a no-op.
//
// Equivalent records ground truth under ConstraintCatalog. Under the
// constraint-free Catalog() every pair is inequivalent in general, so a
// verifier given that catalog must answer not-proved (or refuted, when a
// refutation budget is granted) — never equivalent. The tier is separate
// from CalcitePairs, whose count and verdicts are pinned elsewhere.
func ConstraintPairs() []Pair {
	var pairs []Pair
	add := func(rule string, cat Category, sql1, sql2 string) {
		pairs = append(pairs, Pair{
			ID:         fmt.Sprintf("constraint-%03d", len(pairs)+1),
			Rule:       rule,
			Category:   cat,
			SQL1:       sql1,
			SQL2:       sql2,
			Equivalent: true,
		})
	}

	// FK join elimination: the parent side of a PK/FK join is dropped when
	// none of its columns escape. EMP.DEPT_ID and BONUS.EMP_ID are NOT
	// NULL, so no residual; ACCOUNT.EMP_ID is nullable, so elimination
	// leaves the IS NOT NULL residual SQL2 states explicitly.
	add("JoinElimFK", USPJ,
		"SELECT EMP.EMP_ID, EMP.SALARY FROM EMP JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID",
		"SELECT EMP_ID, SALARY FROM EMP")
	add("JoinElimFK", USPJ,
		"SELECT EMP.ENAME FROM EMP JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE EMP.SALARY > 10",
		"SELECT ENAME FROM EMP WHERE SALARY > 10")
	add("JoinElimFK", USPJ,
		"SELECT BONUS.AMOUNT, BONUS.YEAR FROM BONUS JOIN EMP ON BONUS.EMP_ID = EMP.EMP_ID",
		"SELECT AMOUNT, YEAR FROM BONUS")
	add("JoinElimFK", USPJ,
		"SELECT ACCOUNT.ACCT_ID, ACCOUNT.BALANCE FROM ACCOUNT JOIN EMP ON ACCOUNT.EMP_ID = EMP.EMP_ID",
		"SELECT ACCT_ID, BALANCE FROM ACCOUNT WHERE EMP_ID IS NOT NULL")

	// DISTINCT removal over a declared NOT NULL UNIQUE key.
	add("DistinctOnUnique", Aggregate,
		"SELECT DISTINCT ENAME FROM EMP",
		"SELECT ENAME FROM EMP")
	add("DistinctOnUnique", Aggregate,
		"SELECT DISTINCT ENAME, SALARY FROM EMP",
		"SELECT ENAME, SALARY FROM EMP")
	add("DistinctOnUnique", Aggregate,
		"SELECT DISTINCT ENAME, DEPT_ID FROM EMP WHERE SALARY > 5",
		"SELECT ENAME, DEPT_ID FROM EMP WHERE SALARY > 5")

	// IS NOT NULL pruning on declared NOT NULL columns (none of which are
	// NOT NULL in the constraint-free twin).
	add("NotNullPrune", USPJ,
		"SELECT EMP_ID FROM EMP WHERE DEPT_ID IS NOT NULL",
		"SELECT EMP_ID FROM EMP")
	add("NotNullPrune", USPJ,
		"SELECT ENAME FROM EMP WHERE ENAME IS NOT NULL",
		"SELECT ENAME FROM EMP")
	add("NotNullPrune", USPJ,
		"SELECT EMP_ID, SALARY FROM EMP WHERE LOCATION IS NOT NULL AND SALARY > 3",
		"SELECT EMP_ID, SALARY FROM EMP WHERE SALARY > 3")

	return pairs
}
