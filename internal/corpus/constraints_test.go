package corpus

import (
	"math/rand"
	"testing"

	"spes"
	"spes/internal/datagen"
	"spes/internal/engine"
	"spes/internal/exec"
	"spes/internal/plan"
)

// TestConstraintPairsProveOnlyWithConstraints is the tier's defining
// property: every pair proves equivalent against ConstraintCatalog and
// stays not-proved — not refuted, no refutation budget is granted — against
// the constraint-free twin.
func TestConstraintPairsProveOnlyWithConstraints(t *testing.T) {
	pairs := ConstraintPairs()
	eng := make([]engine.Pair, len(pairs))
	for i, p := range pairs {
		eng[i] = engine.Pair{ID: p.ID, SQL1: p.SQL1, SQL2: p.SQL2}
	}

	withRes, _ := engine.VerifyBatch(ConstraintCatalog(), eng, engine.Options{Workers: 2})
	for i, r := range withRes {
		if r.Verdict != engine.Equivalent {
			t.Errorf("%s (%s): with constraints got %s (%s), want equivalent\nq1: %s\nq2: %s",
				pairs[i].ID, pairs[i].Rule, r.Verdict, r.Reason, pairs[i].SQL1, pairs[i].SQL2)
		}
	}

	withoutRes, _ := engine.VerifyBatch(Catalog(), eng, engine.Options{Workers: 2})
	for i, r := range withoutRes {
		if r.Verdict != engine.NotProved {
			t.Errorf("%s (%s): without constraints got %s, want not-proved\nq1: %s\nq2: %s",
				pairs[i].ID, pairs[i].Rule, r.Verdict, pairs[i].SQL1, pairs[i].SQL2)
		}
	}
}

// TestConstraintPairsGroundTruth validates the Equivalent flag by
// differential execution over constraint-valid random databases — the
// generator enforces the declared keys, FKs, and NOT NULLs, so agreement
// here is agreement on exactly the databases the equivalence claims.
func TestConstraintPairsGroundTruth(t *testing.T) {
	cat := ConstraintCatalog()
	b := plan.NewBuilder(cat)
	r := rand.New(rand.NewSource(99))
	for _, p := range ConstraintPairs() {
		q1, err := b.BuildSQL(p.SQL1)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		q2, err := b.BuildSQL(p.SQL2)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		for i := 0; i < 16; i++ {
			db := datagen.Random(cat, r, datagen.Options{MaxRows: 4})
			r1, err := exec.Run(db, q1)
			if err != nil {
				t.Fatalf("%s: exec q1: %v", p.ID, err)
			}
			r2, err := exec.Run(db, q2)
			if err != nil {
				t.Fatalf("%s: exec q2: %v", p.ID, err)
			}
			if !exec.BagEqual(r1, r2) {
				t.Fatalf("%s (%s): outputs differ on a constraint-valid database\nq1: %s\nq2: %s\nout1:\n%s\nout2:\n%s",
					p.ID, p.Rule, p.SQL1, p.SQL2, exec.FormatRows(r1), exec.FormatRows(r2))
			}
		}
	}
}

// TestConstraintPairsDivergeWithoutConstraints spot-checks that the tier's
// pairs are genuinely inequivalent without the constraints: on
// unconstrained random databases at least some pair must produce differing
// outputs (if none ever did, the tier would be testing nothing).
func TestConstraintPairsDivergeWithoutConstraints(t *testing.T) {
	cat := Catalog()
	b := plan.NewBuilder(cat)
	r := rand.New(rand.NewSource(7))
	diverged := false
	for _, p := range ConstraintPairs() {
		q1, err := b.BuildSQL(p.SQL1)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		q2, err := b.BuildSQL(p.SQL2)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		for i := 0; i < 24 && !diverged; i++ {
			db := datagen.Random(cat, r, datagen.Options{MaxRows: 4})
			r1, err1 := exec.Run(db, q1)
			r2, err2 := exec.Run(db, q2)
			if err1 == nil && err2 == nil && !exec.BagEqual(r1, r2) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Error("no constraint pair ever diverged on unconstrained databases; the tier is vacuous")
	}
}

// TestConstraintDDLDigestParity pins the DDL twins to their struct-built
// catalogs: feeding ConstraintDDL / BaseDDL to the schema parser (the path
// spes-serve -schema and the CI stage use) must land on exactly the same
// constraint digests, or file-fed servers would silently key a different
// cache namespace than library users of the same schema.
func TestConstraintDDLDigestParity(t *testing.T) {
	fromDDL, err := spes.ParseCatalog(ConstraintDDL)
	if err != nil {
		t.Fatalf("ConstraintDDL does not parse: %v", err)
	}
	if got, want := fromDDL.ConstraintDigest(), ConstraintCatalog().ConstraintDigest(); got != want {
		t.Errorf("ConstraintDDL digest %q != ConstraintCatalog digest %q", got, want)
	}
	baseDDL, err := spes.ParseCatalog(BaseDDL)
	if err != nil {
		t.Fatalf("BaseDDL does not parse: %v", err)
	}
	if got, want := baseDDL.ConstraintDigest(), Catalog().ConstraintDigest(); got != want {
		t.Errorf("BaseDDL digest %q != Catalog digest %q", got, want)
	}
}

// TestConstraintDigestsDiffer pins the catalogs apart: the constraint twin
// must digest differently from the base catalog, and both digests must be
// stable across calls (they key caches and durable records).
func TestConstraintDigestsDiffer(t *testing.T) {
	base, con := Catalog().ConstraintDigest(), ConstraintCatalog().ConstraintDigest()
	if base == con {
		t.Fatalf("base and constraint catalogs share digest %q", base)
	}
	if con == "" {
		t.Fatal("constraint catalog has empty digest")
	}
	if Catalog().ConstraintDigest() != base || ConstraintCatalog().ConstraintDigest() != con {
		t.Fatal("constraint digests are not stable across calls")
	}
}
