// Package corpus provides the two workloads of the paper's evaluation
// (§7): a Calcite-style benchmark of equivalent query pairs generated the
// way the original suite was (by applying optimizer rewrite rules to seed
// queries), and a synthetic production workload calibrated to the reported
// statistics of the Ant Financial fraud-detection queries.
package corpus

import (
	"spes/internal/schema"
)

// Category groups pairs the way Table 1 does.
type Category int

const (
	// USPJ: unions of select-project-join queries.
	USPJ Category = iota
	// Aggregate: at least one aggregate operator.
	Aggregate
	// OuterJoin: at least one outer join.
	OuterJoin
)

func (c Category) String() string {
	switch c {
	case USPJ:
		return "USPJ"
	case Aggregate:
		return "Aggregate"
	case OuterJoin:
		return "Outer-Join"
	}
	return "?"
}

// MarshalText lets Category key JSON maps in benchmark reports.
func (c Category) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// Pair is one benchmark entry: two queries produced by applying an
// optimizer rule, expected to be equivalent under bag semantics unless
// noted.
type Pair struct {
	ID       string
	Rule     string // the rewrite rule that generated the pair
	Category Category
	SQL1     string
	SQL2     string
	// Equivalent records ground truth. All Calcite-style pairs are
	// equivalent by construction except where a rule is only set-semantics
	// safe, which we do not include.
	Equivalent bool
	// Note tags expectations: "unsupported:<feature>" for pairs exercising
	// features outside the supported subset, "limit:<reason>" for
	// supported pairs the paper's §7.4 limitations leave unproved.
	Note string
}

// Unsupported reports whether the pair is expected to be unsupported.
func (p Pair) Unsupported() bool {
	return len(p.Note) >= 12 && p.Note[:12] == "unsupported:"
}

// Catalog returns the benchmark schema: the EMP/DEPT/BONUS/ACCOUNT tables
// used by the Calcite test suite and the paper's examples.
func Catalog() *schema.Catalog {
	cat := schema.NewCatalog()
	mustAdd := func(t *schema.Table) {
		if err := cat.AddTable(t); err != nil {
			panic(err)
		}
	}
	mustAdd(&schema.Table{
		Name: "EMP",
		Columns: []schema.Column{
			{Name: "EMP_ID", Type: schema.Int, NotNull: true},
			{Name: "ENAME", Type: schema.String},
			{Name: "SALARY", Type: schema.Int},
			{Name: "DEPT_ID", Type: schema.Int},
			{Name: "LOCATION", Type: schema.String},
			{Name: "MGR_ID", Type: schema.Int},
		},
		PrimaryKey: []string{"EMP_ID"},
	})
	mustAdd(&schema.Table{
		Name: "DEPT",
		Columns: []schema.Column{
			{Name: "DEPT_ID", Type: schema.Int, NotNull: true},
			{Name: "DEPT_NAME", Type: schema.String},
			{Name: "BUDGET", Type: schema.Int},
		},
		PrimaryKey: []string{"DEPT_ID"},
	})
	mustAdd(&schema.Table{
		Name: "BONUS",
		Columns: []schema.Column{
			{Name: "EMP_ID", Type: schema.Int, NotNull: true},
			{Name: "AMOUNT", Type: schema.Int},
			{Name: "YEAR", Type: schema.Int},
		},
	})
	mustAdd(&schema.Table{
		Name: "ACCOUNT",
		Columns: []schema.Column{
			{Name: "ACCT_ID", Type: schema.Int, NotNull: true},
			{Name: "EMP_ID", Type: schema.Int},
			{Name: "BALANCE", Type: schema.Int},
		},
		PrimaryKey: []string{"ACCT_ID"},
	})
	return cat
}
