package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"spes/internal/schema"
)

// The production-workload substitute: the paper evaluates SPES on 9,486
// proprietary fraud-detection queries from Ant Financial (Table 2,
// Figure 7). This generator produces a synthetic workload with the same
// measured characteristics: three sets of 1001/2987/5498 queries over a
// transaction star schema, injected overlap (equivalent rewrites of shared
// sub-computations), a heavy join/aggregate mix, repeated "hot" queries,
// and a mean complexity of roughly 45 plan nodes per query (8× the Calcite
// suite's mean, Figure 7).

// WorkloadQuery is one query of the synthetic production workload.
type WorkloadQuery struct {
	ID      int
	Set     int // 0..2, mirroring the paper's three query sets
	Cluster int // queries in one cluster share parameters; rewrites are equivalent
	SQL     string
	Tables  []string // sorted input tables (the pairwise-comparison key)
	HasJoin bool
	HasAgg  bool
}

// Workload is the generated query set plus its catalog.
type Workload struct {
	Queries []WorkloadQuery
	Catalog *schema.Catalog
}

// setSizes are the paper's three production sets.
var setSizes = [3]int{1001, 2987, 5498}

// WorkloadCatalog returns the fraud-detection star schema.
func WorkloadCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	mustAdd := func(t *schema.Table) {
		if err := cat.AddTable(t); err != nil {
			panic(err)
		}
	}
	mustAdd(&schema.Table{
		Name: "TXN",
		Columns: []schema.Column{
			{Name: "TXN_ID", Type: schema.Int, NotNull: true},
			{Name: "CUST_ID", Type: schema.Int},
			{Name: "MERCH_ID", Type: schema.Int},
			{Name: "AMOUNT", Type: schema.Int},
			{Name: "STATUS", Type: schema.Int},
			{Name: "DAY", Type: schema.Int},
		},
		PrimaryKey: []string{"TXN_ID"},
	})
	mustAdd(&schema.Table{
		Name: "CUSTOMER",
		Columns: []schema.Column{
			{Name: "CUST_ID", Type: schema.Int, NotNull: true},
			{Name: "REGION", Type: schema.String},
			{Name: "RISK_LEVEL", Type: schema.Int},
		},
		PrimaryKey: []string{"CUST_ID"},
	})
	mustAdd(&schema.Table{
		Name: "MERCHANT",
		Columns: []schema.Column{
			{Name: "MERCH_ID", Type: schema.Int, NotNull: true},
			{Name: "CATEGORY", Type: schema.String},
			{Name: "RISK_LEVEL", Type: schema.Int},
		},
		PrimaryKey: []string{"MERCH_ID"},
	})
	mustAdd(&schema.Table{
		Name: "ALERT",
		Columns: []schema.Column{
			{Name: "ALERT_ID", Type: schema.Int, NotNull: true},
			{Name: "TXN_ID", Type: schema.Int},
			{Name: "SEVERITY", Type: schema.Int},
		},
		PrimaryKey: []string{"ALERT_ID"},
	})
	return cat
}

// ProductionWorkload generates the synthetic workload. scale shrinks every
// set proportionally (1.0 reproduces the full 9,486 queries; benchmarks
// default to a smaller scale for turnaround).
func ProductionWorkload(seed int64, scale float64) *Workload {
	r := rand.New(rand.NewSource(seed))
	w := &Workload{Catalog: WorkloadCatalog()}
	id := 0
	cluster := 0
	for set, size := range setSizes {
		n := int(float64(size) * scale)
		if n < 8 {
			n = 8
		}
		for len(filterBySet(w.Queries, set)) < n {
			cluster++
			fam := families[r.Intn(len(families))]
			inst := fam(r)
			members := append([]member{{sql: inst.base}}, inst.variants...)
			// Hot queries recur verbatim (the "highest query frequency"
			// column of Table 2 — the paper reports recurrence in the
			// hundreds, so a rare viral tier rides above the common hot
			// tier).
			repeats := 1
			switch heat := r.Intn(1200); {
			case heat < 12: // ~1/100 clusters: viral dashboards
				repeats = 12 + r.Intn(12)
			case heat < 42: // ~1/40 clusters: hot queries
				repeats = 2 + r.Intn(6)
			}
			pad := padDepth(r)
			for rep := 0; rep < repeats; rep++ {
				for _, m := range members {
					id++
					w.Queries = append(w.Queries, WorkloadQuery{
						ID:      id,
						Set:     set,
						Cluster: cluster,
						SQL:     padQuery(m.sql, pad, r),
						Tables:  inst.tables,
						HasJoin: inst.hasJoin,
						HasAgg:  inst.hasAgg,
					})
				}
			}
		}
	}
	return w
}

func filterBySet(qs []WorkloadQuery, set int) []WorkloadQuery {
	var out []WorkloadQuery
	for _, q := range qs {
		if q.Set == set {
			out = append(out, q)
		}
	}
	return out
}

// padDepth draws the derived-table nesting depth; calibrated so the mean
// plan size lands near the paper's reported 45 nodes per query.
func padDepth(r *rand.Rand) int {
	return r.Intn(76)
}

// padQuery wraps a query in identity derived tables — the deep pipeline
// nesting production queries exhibit. Identity wrappers preserve bag
// semantics, so equivalence within a cluster is unaffected.
func padQuery(sql string, depth int, r *rand.Rand) string {
	for i := 0; i < depth; i++ {
		sql = fmt.Sprintf("SELECT * FROM (%s) W%d", sql, i)
	}
	return sql
}

type member struct{ sql string }

type instance struct {
	base     string
	variants []member // equivalent rewrites of base
	tables   []string
	hasJoin  bool
	hasAgg   bool
}

func tables(names ...string) []string {
	sort.Strings(names)
	return names
}

// families are the fraud-detection query templates. Each instantiation
// draws fresh parameters; variants are rewrites a different team's pipeline
// plausibly produces (and that an equivalence verifier should unify).
var families = []func(r *rand.Rand) instance{
	// Plain filtered scan of the fact table.
	func(r *rand.Rand) instance {
		amt, status := r.Intn(900)+100, r.Intn(4)
		base := fmt.Sprintf("SELECT TXN_ID, AMOUNT FROM TXN WHERE AMOUNT > %d AND STATUS = %d", amt, status)
		var variants []member
		if r.Intn(5) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT TXN_ID, AMOUNT FROM (SELECT * FROM TXN WHERE STATUS = %d) T WHERE AMOUNT + 10 > %d", status, amt+10)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN")}
	},
	// Transactions joined with customers in a risky region.
	func(r *rand.Rand) instance {
		risk := r.Intn(5)
		base := fmt.Sprintf(
			"SELECT T.TXN_ID, C.REGION FROM TXN T, CUSTOMER C WHERE T.CUST_ID = C.CUST_ID AND C.RISK_LEVEL > %d", risk)
		var variants []member
		if r.Intn(8) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT T.TXN_ID, C.REGION FROM CUSTOMER C, TXN T WHERE C.CUST_ID = T.CUST_ID AND C.RISK_LEVEL > %d", risk)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN", "CUSTOMER"), hasJoin: true}
	},
	// Daily exposure per merchant.
	func(r *rand.Rand) instance {
		day := r.Intn(365)
		base := fmt.Sprintf(
			"SELECT MERCH_ID, SUM(AMOUNT) FROM TXN WHERE DAY > %d GROUP BY MERCH_ID", day)
		var variants []member
		if r.Intn(8) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT MERCH_ID, SUM(AMOUNT) FROM (SELECT MERCH_ID, AMOUNT FROM TXN WHERE DAY > %d) T GROUP BY MERCH_ID", day)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN"), hasAgg: true}
	},
	// Category exposure: join + aggregate.
	func(r *rand.Rand) instance {
		amt := r.Intn(500)
		base := fmt.Sprintf(
			"SELECT M.CATEGORY, SUM(T.AMOUNT) FROM TXN T, MERCHANT M WHERE T.MERCH_ID = M.MERCH_ID AND T.AMOUNT > %d GROUP BY M.CATEGORY", amt)
		var variants []member
		if r.Intn(8) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT M.CATEGORY, SUM(T.AMOUNT) FROM MERCHANT M, TXN T WHERE M.MERCH_ID = T.MERCH_ID AND T.AMOUNT > %d GROUP BY M.CATEGORY", amt)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN", "MERCHANT"), hasJoin: true, hasAgg: true}
	},
	// Distinct active regions.
	func(r *rand.Rand) instance {
		risk := r.Intn(5)
		base := fmt.Sprintf("SELECT DISTINCT REGION FROM CUSTOMER WHERE RISK_LEVEL >= %d", risk)
		var variants []member
		if r.Intn(8) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT REGION FROM CUSTOMER WHERE RISK_LEVEL >= %d GROUP BY REGION", risk)})
		}
		return instance{base: base, variants: variants, tables: tables("CUSTOMER"), hasAgg: true}
	},
	// Two-source screening union.
	func(r *rand.Rand) instance {
		hi, lo := r.Intn(900)+100, r.Intn(50)
		base := fmt.Sprintf(
			"SELECT TXN_ID FROM TXN WHERE AMOUNT > %d UNION ALL SELECT TXN_ID FROM TXN WHERE AMOUNT < %d", hi, lo)
		var variants []member
		if r.Intn(5) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT TXN_ID FROM TXN WHERE AMOUNT < %d UNION ALL SELECT TXN_ID FROM TXN WHERE AMOUNT + 1 > %d", lo, hi+1)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN")}
	},
	// Alerted transactions (correlated EXISTS).
	func(r *rand.Rand) instance {
		sev := r.Intn(5)
		base := fmt.Sprintf(
			"SELECT T.TXN_ID FROM TXN T WHERE EXISTS (SELECT 1 FROM ALERT A WHERE A.TXN_ID = T.TXN_ID AND A.SEVERITY > %d)", sev)
		var variants []member
		if r.Intn(8) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT T.TXN_ID FROM TXN T WHERE EXISTS (SELECT 1 FROM ALERT A WHERE T.TXN_ID = A.TXN_ID AND A.SEVERITY > %d)", sev)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN", "ALERT"), hasJoin: true}
	},
	// Enrichment left join with a null-rejecting filter.
	func(r *rand.Rand) instance {
		risk := r.Intn(5)
		base := fmt.Sprintf(
			"SELECT T.TXN_ID, M.CATEGORY FROM TXN T LEFT JOIN MERCHANT M ON T.MERCH_ID = M.MERCH_ID WHERE M.RISK_LEVEL > %d", risk)
		var variants []member
		if r.Intn(5) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT T.TXN_ID, M.CATEGORY FROM TXN T JOIN MERCHANT M ON T.MERCH_ID = M.MERCH_ID WHERE M.RISK_LEVEL > %d", risk)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN", "MERCHANT"), hasJoin: true}
	},
	// Weekly rollup over a daily rollup.
	func(r *rand.Rand) instance {
		day := r.Intn(365)
		base := fmt.Sprintf(
			"SELECT MERCH_ID, SUM(S) FROM (SELECT MERCH_ID, DAY, SUM(AMOUNT) AS S FROM TXN WHERE DAY > %d GROUP BY MERCH_ID, DAY) T GROUP BY MERCH_ID", day)
		var variants []member
		if r.Intn(5) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT MERCH_ID, SUM(AMOUNT) FROM TXN WHERE DAY > %d GROUP BY MERCH_ID", day)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN"), hasAgg: true}
	},
	// Severity bucketing with CASE.
	func(r *rand.Rand) instance {
		cut := r.Intn(5)
		base := fmt.Sprintf(
			"SELECT ALERT_ID, CASE WHEN SEVERITY > %d THEN 1 ELSE 0 END FROM ALERT", cut)
		var variants []member
		if r.Intn(5) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT ALERT_ID, CASE WHEN SEVERITY <= %d THEN 0 WHEN SEVERITY > %d THEN 1 ELSE 0 END FROM ALERT", cut, cut)})
		}
		return instance{base: base, variants: variants, tables: tables("ALERT")}
	},
	// Three-way risk join.
	func(r *rand.Rand) instance {
		amt := r.Intn(1000)
		base := fmt.Sprintf(
			"SELECT T.TXN_ID FROM TXN T, CUSTOMER C, MERCHANT M WHERE T.CUST_ID = C.CUST_ID AND T.MERCH_ID = M.MERCH_ID AND T.AMOUNT > %d", amt)
		var variants []member
		if r.Intn(8) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT T.TXN_ID FROM MERCHANT M, TXN T, CUSTOMER C WHERE T.MERCH_ID = M.MERCH_ID AND C.CUST_ID = T.CUST_ID AND T.AMOUNT > %d", amt)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN", "CUSTOMER", "MERCHANT"), hasJoin: true}
	},
	// Status-pinned exposure rollup: the WHERE pins a grouping column, so
	// grouping by it is redundant (hard for containment-based provers).
	func(r *rand.Rand) instance {
		st, day := r.Intn(4), r.Intn(365)
		base := fmt.Sprintf(
			"SELECT MERCH_ID, SUM(AMOUNT) FROM TXN WHERE STATUS = %d AND DAY > %d GROUP BY MERCH_ID", st, day)
		var variants []member
		if r.Intn(5) == 0 {
			variants = append(variants, member{fmt.Sprintf(
				"SELECT MERCH_ID, SUM(AMOUNT) FROM TXN WHERE STATUS = %d AND DAY > %d GROUP BY MERCH_ID, STATUS", st, day)})
		}
		return instance{base: base, variants: variants, tables: tables("TXN"), hasAgg: true}
	},
	// Customer risk histogram (parameter-free; recurs across teams).
	func(r *rand.Rand) instance {
		base := "SELECT RISK_LEVEL, COUNT(*) FROM CUSTOMER GROUP BY RISK_LEVEL"
		var variants []member
		if r.Intn(8) == 0 {
			variants = append(variants, member{
				"SELECT RISK_LEVEL, COUNT(*) FROM (SELECT RISK_LEVEL FROM CUSTOMER) T GROUP BY RISK_LEVEL"})
		}
		return instance{base: base, variants: variants, tables: tables("CUSTOMER"), hasAgg: true}
	},
}

// TableKey renders the comparison-group key.
func (q WorkloadQuery) TableKey() string { return strings.Join(q.Tables, ",") }
