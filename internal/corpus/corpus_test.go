package corpus

import (
	"math/rand"
	"testing"

	"spes/internal/datagen"
	"spes/internal/exec"
	"spes/internal/plan"
)

func TestCalcitePairCount(t *testing.T) {
	pairs := CalcitePairs()
	if len(pairs) != 232 {
		t.Fatalf("corpus has %d pairs, want 232", len(pairs))
	}
	ids := map[string]bool{}
	for _, p := range pairs {
		if ids[p.ID] {
			t.Errorf("duplicate pair id %s", p.ID)
		}
		ids[p.ID] = true
		if p.SQL1 == "" || p.SQL2 == "" || p.Rule == "" {
			t.Errorf("%s: incomplete pair", p.ID)
		}
	}
}

func TestCategoryBreakdown(t *testing.T) {
	counts := map[Category]int{}
	unsupported := 0
	for _, p := range CalcitePairs() {
		if p.Unsupported() {
			unsupported++
			continue
		}
		counts[p.Category]++
	}
	t.Logf("supported: USPJ=%d Aggregate=%d OuterJoin=%d, unsupported=%d",
		counts[USPJ], counts[Aggregate], counts[OuterJoin], unsupported)
	if counts[USPJ] == 0 || counts[Aggregate] == 0 || counts[OuterJoin] == 0 {
		t.Error("every category must be populated")
	}
	if unsupported < 80 {
		t.Errorf("unsupported fraction too small: %d", unsupported)
	}
}

// TestUnsupportedPairsReallyUnsupported ensures the tagged pairs fail to
// parse or build, and the untagged ones succeed.
func TestUnsupportedPairsReallyUnsupported(t *testing.T) {
	cat := Catalog()
	b := plan.NewBuilder(cat)
	for _, p := range CalcitePairs() {
		_, err1 := b.BuildSQL(p.SQL1)
		_, err2 := b.BuildSQL(p.SQL2)
		failed := err1 != nil || err2 != nil
		if p.Unsupported() && !failed {
			t.Errorf("%s (%s): tagged unsupported but builds fine", p.ID, p.Rule)
		}
		if !p.Unsupported() && failed {
			t.Errorf("%s (%s): should build, got %v / %v\nq1: %s\nq2: %s",
				p.ID, p.Rule, err1, err2, p.SQL1, p.SQL2)
		}
	}
}

// TestGroundTruthByExecution validates the Equivalent flag of every
// supported pair by differential execution on random databases. This is the
// corpus's core integrity check: a pair marked equivalent that ever differs
// is a corpus bug.
func TestGroundTruthByExecution(t *testing.T) {
	cat := Catalog()
	b := plan.NewBuilder(cat)
	r := rand.New(rand.NewSource(1234))
	for _, p := range CalcitePairs() {
		if p.Unsupported() {
			continue
		}
		q1, err := b.BuildSQL(p.SQL1)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		q2, err := b.BuildSQL(p.SQL2)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		if !p.Equivalent {
			continue // no inequivalent pairs in this suite
		}
		for i := 0; i < 12; i++ {
			db := datagen.Random(cat, r, datagen.Options{MaxRows: 4})
			r1, err := exec.Run(db, q1)
			if err != nil {
				t.Fatalf("%s: exec q1: %v", p.ID, err)
			}
			r2, err := exec.Run(db, q2)
			if err != nil {
				t.Fatalf("%s: exec q2: %v", p.ID, err)
			}
			if !exec.BagEqual(r1, r2) {
				t.Fatalf("%s (%s): pair marked equivalent but outputs differ\nq1: %s\nq2: %s\nout1:\n%s\nout2:\n%s",
					p.ID, p.Rule, p.SQL1, p.SQL2, exec.FormatRows(r1), exec.FormatRows(r2))
			}
		}
	}
}
