package corpus

import (
	"fmt"
)

// CalcitePairs returns the 232-pair benchmark. Pairs are generated the way
// the Apache Calcite test suite's pairs were: by applying an optimizer
// rewrite rule to a seed query, instantiated over the benchmark schema. A
// fixed subset deliberately uses SQL features outside the supported subset
// (CAST, window functions, LIMIT/FETCH, INTERSECT), reproducing the
// supported/unsupported split of Table 1; another subset exercises the
// §7.4 limitation classes (union+aggregate, join+aggregate,
// integrity-constraint reasoning) and is expected to stay unproved.
func CalcitePairs() []Pair {
	g := &gen{}

	g.uspjPairs()
	g.aggregatePairs()
	g.outerJoinPairs()
	g.extraPairs()
	g.limitationPairs()
	g.unsupportedPairs()

	if len(g.pairs) != 232 {
		panic(fmt.Sprintf("corpus: generated %d pairs, want 232", len(g.pairs)))
	}
	return g.pairs
}

type gen struct {
	pairs []Pair
}

func (g *gen) add(rule string, cat Category, sql1, sql2, note string) {
	g.pairs = append(g.pairs, Pair{
		ID:         fmt.Sprintf("calcite-%03d", len(g.pairs)+1),
		Rule:       rule,
		Category:   cat,
		SQL1:       sql1,
		SQL2:       sql2,
		Equivalent: note == "" || note[:6] == "limit:",
		Note:       note,
	})
}

// ---------------------------------------------------------------- USPJ ---

func (g *gen) uspjPairs() {
	// FilterMergeRule: σp(σq(T)) = σ(q ∧ p)(T).
	for _, c := range []struct{ tbl, p, q string }{
		{"EMP", "SALARY > 5", "DEPT_ID < 9"},
		{"EMP", "SALARY >= 2", "LOCATION = 'NY'"},
		{"DEPT", "BUDGET > 100", "DEPT_ID > 1"},
		{"BONUS", "AMOUNT > 0", "YEAR = 2020"},
		{"ACCOUNT", "BALANCE >= 10", "EMP_ID > 3"},
	} {
		g.add("FilterMerge", USPJ,
			fmt.Sprintf("SELECT * FROM (SELECT * FROM %s WHERE %s) T WHERE %s", c.tbl, c.q, c.p),
			fmt.Sprintf("SELECT * FROM %s WHERE %s AND %s", c.tbl, c.q, c.p),
			"")
	}

	// FilterProjectTransposeRule: π over σ vs σ over π.
	for _, c := range []struct{ tbl, cols, pred string }{
		{"EMP", "EMP_ID, SALARY", "SALARY > 10"},
		{"EMP", "DEPT_ID, LOCATION", "DEPT_ID = 3"},
		{"DEPT", "DEPT_ID, BUDGET", "BUDGET < 500"},
		{"BONUS", "EMP_ID, AMOUNT", "AMOUNT >= 1"},
	} {
		g.add("FilterProjectTranspose", USPJ,
			fmt.Sprintf("SELECT %s FROM %s WHERE %s", c.cols, c.tbl, c.pred),
			fmt.Sprintf("SELECT * FROM (SELECT %s FROM %s) T WHERE %s", c.cols, c.tbl, c.pred),
			"")
	}

	// ProjectMergeRule: π∘π composes.
	for _, c := range []struct{ inner, outer, direct string }{
		{"SELECT SALARY + 1 AS S, DEPT_ID FROM EMP", "SELECT S + 2, DEPT_ID FROM (%s) T", "SELECT SALARY + 3, DEPT_ID FROM EMP"},
		{"SELECT SALARY * 2 AS S FROM EMP", "SELECT S * 3 FROM (%s) T", "SELECT SALARY * 6 FROM EMP"},
		{"SELECT BUDGET - 5 AS B FROM DEPT", "SELECT B - 5 FROM (%s) T", "SELECT BUDGET - 10 FROM DEPT"},
		{"SELECT AMOUNT AS A, YEAR AS Y FROM BONUS", "SELECT Y, A FROM (%s) T", "SELECT YEAR, AMOUNT FROM BONUS"},
	} {
		g.add("ProjectMerge", USPJ,
			fmt.Sprintf(c.outer, c.inner),
			c.direct,
			"")
	}

	// FilterIntoJoinRule: filter above a join folds into the join.
	for _, c := range []struct{ on, w string }{
		{"EMP.DEPT_ID = DEPT.DEPT_ID", "EMP.SALARY > 10"},
		{"EMP.DEPT_ID = DEPT.DEPT_ID", "DEPT.BUDGET > 50"},
		{"EMP.EMP_ID = BONUS.EMP_ID", "BONUS.AMOUNT > 0"},
		{"EMP.DEPT_ID = DEPT.DEPT_ID", "EMP.SALARY > DEPT.BUDGET"},
	} {
		tbl2 := "DEPT"
		if c.on == "EMP.EMP_ID = BONUS.EMP_ID" {
			tbl2 = "BONUS"
		}
		g.add("FilterIntoJoin", USPJ,
			fmt.Sprintf("SELECT EMP.EMP_ID FROM EMP JOIN %s ON %s WHERE %s", tbl2, c.on, c.w),
			fmt.Sprintf("SELECT EMP.EMP_ID FROM EMP JOIN %s ON %s AND %s", tbl2, c.on, c.w),
			"")
	}

	// JoinCommuteRule.
	for _, c := range []struct{ a, b, on, sel string }{
		{"EMP", "DEPT", "EMP.DEPT_ID = DEPT.DEPT_ID", "EMP.EMP_ID, DEPT.DEPT_NAME"},
		{"EMP", "BONUS", "EMP.EMP_ID = BONUS.EMP_ID", "EMP.ENAME, BONUS.AMOUNT"},
		{"DEPT", "ACCOUNT", "DEPT.DEPT_ID = ACCOUNT.EMP_ID", "DEPT.DEPT_NAME, ACCOUNT.BALANCE"},
		{"EMP", "ACCOUNT", "EMP.EMP_ID = ACCOUNT.EMP_ID", "EMP.SALARY, ACCOUNT.BALANCE"},
		{"BONUS", "ACCOUNT", "BONUS.EMP_ID = ACCOUNT.EMP_ID", "BONUS.YEAR, ACCOUNT.ACCT_ID"},
	} {
		g.add("JoinCommute", USPJ,
			fmt.Sprintf("SELECT %s FROM %s, %s WHERE %s", c.sel, c.a, c.b, c.on),
			fmt.Sprintf("SELECT %s FROM %s, %s WHERE %s", c.sel, c.b, c.a, c.on),
			"")
	}

	// JoinAssociateRule: three-way join reordered.
	for i, perm := range []string{
		"EMP, DEPT, BONUS",
		"BONUS, EMP, DEPT",
		"DEPT, BONUS, EMP",
	} {
		_ = i
		g.add("JoinAssociate", USPJ,
			"SELECT EMP.ENAME FROM EMP, DEPT, BONUS WHERE EMP.DEPT_ID = DEPT.DEPT_ID AND EMP.EMP_ID = BONUS.EMP_ID",
			fmt.Sprintf("SELECT EMP.ENAME FROM %s WHERE EMP.EMP_ID = BONUS.EMP_ID AND DEPT.DEPT_ID = EMP.DEPT_ID", perm),
			"")
	}

	// ReduceExpressions: semantically equal, syntactically different
	// predicates (the headline UDP-defeating rule).
	for _, c := range []struct{ p1, p2 string }{
		{"DEPT_ID > 10", "DEPT_ID + 5 > 15"},
		{"SALARY >= 7", "SALARY + 1 >= 8"},
		{"SALARY < 4", "2 * SALARY < 8"},
		{"DEPT_ID = 10", "DEPT_ID + 5 = 15"},
		{"SALARY - DEPT_ID > 0", "SALARY > DEPT_ID"},
		{"SALARY > 3 AND SALARY > 5", "SALARY > 5"},
	} {
		g.add("ReduceExpressions", USPJ,
			fmt.Sprintf("SELECT EMP_ID, LOCATION FROM EMP WHERE %s", c.p1),
			fmt.Sprintf("SELECT EMP_ID, LOCATION FROM EMP WHERE %s", c.p2),
			"")
	}

	// NOT over comparisons.
	for _, c := range []struct{ p1, p2 string }{
		{"NOT (SALARY > 10)", "SALARY <= 10"},
		{"NOT (SALARY <= 10)", "SALARY > 10"},
		{"NOT (SALARY = 10 OR SALARY = 20)", "SALARY <> 10 AND SALARY <> 20"},
	} {
		g.add("NotPushdown", USPJ,
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p1),
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p2),
			"")
	}

	// Constant propagation through equalities.
	for _, c := range []struct{ p1, p2 string }{
		{"DEPT_ID = 10 AND SALARY > DEPT_ID", "DEPT_ID = 10 AND SALARY > 10"},
		{"DEPT_ID = 3 AND DEPT_ID + SALARY > 5", "DEPT_ID = 3 AND SALARY > 2"},
		{"SALARY = DEPT_ID AND SALARY > 4", "SALARY = DEPT_ID AND DEPT_ID > 4"},
	} {
		g.add("ConstantPropagation", USPJ,
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p1),
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p2),
			"")
	}

	// IN-list expansion and reordering.
	for _, c := range []struct{ p1, p2 string }{
		{"DEPT_ID IN (1, 2, 3)", "DEPT_ID = 1 OR DEPT_ID = 2 OR DEPT_ID = 3"},
		{"DEPT_ID IN (1, 2)", "DEPT_ID IN (2, 1)"},
		{"LOCATION IN ('NY', 'SF')", "LOCATION = 'SF' OR LOCATION = 'NY'"},
	} {
		g.add("InListExpand", USPJ,
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p1),
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p2),
			"")
	}

	// BETWEEN expansion.
	for _, c := range []struct{ p1, p2 string }{
		{"SALARY BETWEEN 3 AND 9", "SALARY >= 3 AND SALARY <= 9"},
		{"NOT (SALARY BETWEEN 3 AND 9)", "SALARY < 3 OR SALARY > 9"},
	} {
		g.add("BetweenExpand", USPJ,
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p1),
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p2),
			"")
	}

	// CASE rewrites.
	for _, c := range []struct{ e1, e2 string }{
		{
			"CASE WHEN SALARY > 10 THEN 1 ELSE 0 END",
			"CASE WHEN SALARY <= 10 THEN 0 WHEN SALARY > 10 THEN 1 ELSE 0 END",
		},
		{
			"CASE WHEN DEPT_ID = 1 THEN 'a' WHEN DEPT_ID = 2 THEN 'b' ELSE 'c' END",
			"CASE DEPT_ID WHEN 1 THEN 'a' WHEN 2 THEN 'b' ELSE 'c' END",
		},
		{
			"CASE WHEN TRUE THEN SALARY ELSE 0 END",
			"SALARY",
		},
	} {
		g.add("CaseRewrite", USPJ,
			fmt.Sprintf("SELECT %s FROM EMP", c.e1),
			fmt.Sprintf("SELECT %s FROM EMP", c.e2),
			"")
	}

	// UnionMergeRule: associativity/flattening.
	for _, c := range []struct{ q1, q2 string }{
		{
			"SELECT DEPT_ID FROM EMP UNION ALL (SELECT DEPT_ID FROM DEPT UNION ALL SELECT EMP_ID FROM BONUS)",
			"(SELECT DEPT_ID FROM EMP UNION ALL SELECT DEPT_ID FROM DEPT) UNION ALL SELECT EMP_ID FROM BONUS",
		},
		{
			"SELECT DEPT_ID FROM EMP UNION ALL SELECT DEPT_ID FROM DEPT",
			"SELECT DEPT_ID FROM DEPT UNION ALL SELECT DEPT_ID FROM EMP",
		},
		{
			"SELECT SALARY FROM EMP UNION ALL SELECT SALARY FROM EMP",
			"SELECT SALARY FROM EMP UNION ALL SELECT SALARY FROM EMP",
		},
	} {
		g.add("UnionMerge", USPJ, c.q1, c.q2, "")
	}

	// FilterUnionTransposeRule.
	for _, pred := range []string{"DEPT_ID > 2", "DEPT_ID + 1 > 3", "DEPT_ID IS NOT NULL"} {
		g.add("FilterUnionTranspose", USPJ,
			fmt.Sprintf("SELECT * FROM (SELECT DEPT_ID FROM EMP UNION ALL SELECT DEPT_ID FROM DEPT) T WHERE %s", pred),
			fmt.Sprintf("SELECT DEPT_ID FROM EMP WHERE %s UNION ALL SELECT DEPT_ID FROM DEPT WHERE %s", pred, pred),
			"")
	}

	// ProjectRemoveRule: identity projections vanish.
	g.add("ProjectRemove", USPJ,
		"SELECT EMP_ID, ENAME, SALARY, DEPT_ID, LOCATION, MGR_ID FROM EMP",
		"SELECT * FROM EMP",
		"")
	g.add("ProjectRemove", USPJ,
		"SELECT * FROM (SELECT * FROM DEPT) T",
		"SELECT * FROM DEPT",
		"")

	// ReduceExpressions to empty: contradictory predicates.
	for _, c := range []struct{ p1, p2 string }{
		{"SALARY > 5 AND SALARY < 3", "SALARY > 9 AND SALARY < 1"},
		{"DEPT_ID = 1 AND DEPT_ID = 2", "FALSE"},
	} {
		g.add("PruneEmpty", USPJ,
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p1),
			fmt.Sprintf("SELECT EMP_ID FROM EMP WHERE %s", c.p2),
			"")
	}

	// Self-join on the primary key collapses.
	g.add("SelfJoinPK", USPJ,
		"SELECT E1.SALARY, E2.LOCATION FROM EMP E1, EMP E2 WHERE E1.EMP_ID = E2.EMP_ID",
		"SELECT SALARY, LOCATION FROM EMP",
		"")
	g.add("SelfJoinPK", USPJ,
		"SELECT D1.BUDGET FROM DEPT D1, DEPT D2 WHERE D1.DEPT_ID = D2.DEPT_ID AND D2.BUDGET > 10",
		"SELECT BUDGET FROM DEPT WHERE BUDGET > 10",
		"")

	// Three-valued-logic aware rewrites.
	g.add("NullFilter", USPJ,
		"SELECT EMP_ID FROM EMP WHERE SALARY = SALARY",
		"SELECT EMP_ID FROM EMP WHERE SALARY IS NOT NULL",
		"")
	g.add("NullFilter", USPJ,
		"SELECT EMP_ID FROM EMP WHERE SALARY IS NULL OR SALARY < 3",
		"SELECT EMP_ID FROM EMP WHERE SALARY < 3 OR SALARY IS NULL",
		"")

	// EXISTS canonicalization.
	g.add("ExistsCanon", USPJ,
		"SELECT EMP_ID FROM EMP WHERE EXISTS (SELECT 1 FROM DEPT WHERE DEPT.DEPT_ID = EMP.DEPT_ID)",
		"SELECT EMP_ID FROM EMP WHERE EXISTS (SELECT 1 FROM DEPT WHERE EMP.DEPT_ID = DEPT.DEPT_ID)",
		"")
	g.add("ExistsCanon", USPJ,
		"SELECT EMP_ID FROM EMP WHERE NOT EXISTS (SELECT 1 FROM BONUS WHERE BONUS.EMP_ID = EMP.EMP_ID)",
		"SELECT EMP_ID FROM EMP WHERE NOT EXISTS (SELECT 1 FROM BONUS WHERE EMP.EMP_ID = BONUS.EMP_ID)",
		"")

	// Scalar functions: identical uninterpreted calls unify.
	g.add("UdfIdentity", USPJ,
		"SELECT RISKSCORE(SALARY, DEPT_ID) FROM EMP WHERE SALARY > 0",
		"SELECT RISKSCORE(SALARY, DEPT_ID) FROM EMP WHERE SALARY + 1 > 1",
		"")
	g.add("UdfIdentity", USPJ,
		"SELECT EMP_ID FROM EMP WHERE ENAME LIKE 'A%'",
		"SELECT EMP_ID FROM EMP WHERE ENAME LIKE 'A%' AND 1 = 1",
		"")
}

// ----------------------------------------------------------- Aggregate ---

func (g *gen) aggregatePairs() {
	// AggregateProjectMerge: the aggregate argument composes with a
	// projection.
	for _, c := range []struct{ q1, q2 string }{
		{
			"SELECT LOCATION, SUM(S) FROM (SELECT LOCATION, SALARY AS S FROM EMP) T GROUP BY LOCATION",
			"SELECT LOCATION, SUM(SALARY) FROM EMP GROUP BY LOCATION",
		},
		{
			"SELECT D, COUNT(*) FROM (SELECT DEPT_ID AS D FROM EMP) T GROUP BY D",
			"SELECT DEPT_ID, COUNT(*) FROM EMP GROUP BY DEPT_ID",
		},
		{
			"SELECT LOCATION, MIN(S) FROM (SELECT LOCATION, SALARY + 0 AS S FROM EMP) T GROUP BY LOCATION",
			"SELECT LOCATION, MIN(SALARY) FROM EMP GROUP BY LOCATION",
		},
		{
			"SELECT Y, MAX(A) FROM (SELECT YEAR AS Y, AMOUNT AS A FROM BONUS) T GROUP BY Y",
			"SELECT YEAR, MAX(AMOUNT) FROM BONUS GROUP BY YEAR",
		},
	} {
		g.add("AggregateProjectMerge", Aggregate, c.q1, c.q2, "")
	}

	// DISTINCT is GROUP BY over all columns.
	for _, cols := range []string{"DEPT_ID", "DEPT_ID, LOCATION", "LOCATION", "SALARY, DEPT_ID"} {
		g.add("DistinctToAggregate", Aggregate,
			fmt.Sprintf("SELECT DISTINCT %s FROM EMP", cols),
			fmt.Sprintf("SELECT %s FROM EMP GROUP BY %s", cols, cols),
			"")
	}

	// GROUP BY column order is irrelevant.
	for _, c := range []struct{ sel, g1, g2 string }{
		{"DEPT_ID, LOCATION", "DEPT_ID, LOCATION", "LOCATION, DEPT_ID"},
		{"LOCATION, SALARY", "LOCATION, SALARY", "SALARY, LOCATION"},
		{"DEPT_ID, MGR_ID", "DEPT_ID, MGR_ID", "MGR_ID, DEPT_ID"},
	} {
		g.add("GroupKeyPermute", Aggregate,
			fmt.Sprintf("SELECT %s, COUNT(*) FROM EMP GROUP BY %s", c.sel, c.g1),
			fmt.Sprintf("SELECT %s, COUNT(*) FROM EMP GROUP BY %s", c.sel, c.g2),
			"")
	}

	// AggregateRemove: grouping that covers the primary key.
	g.add("AggregateRemovePK", Aggregate,
		"SELECT EMP_ID, SALARY FROM EMP GROUP BY EMP_ID, SALARY",
		"SELECT EMP_ID, SALARY FROM EMP",
		"")
	g.add("AggregateRemovePK", Aggregate,
		"SELECT DISTINCT DEPT_ID, DEPT_NAME FROM DEPT",
		"SELECT DEPT_ID, DEPT_NAME FROM DEPT",
		"")
	g.add("AggregateRemovePK", Aggregate,
		"SELECT ACCT_ID, BALANCE FROM ACCOUNT GROUP BY ACCT_ID, BALANCE",
		"SELECT ACCT_ID, BALANCE FROM ACCOUNT",
		"")

	// HAVING on grouping columns commutes with WHERE.
	for _, c := range []struct{ q1, q2 string }{
		{
			"SELECT DEPT_ID, SUM(SALARY) FROM EMP GROUP BY DEPT_ID HAVING DEPT_ID > 5",
			"SELECT DEPT_ID, SUM(SALARY) FROM EMP WHERE DEPT_ID > 5 GROUP BY DEPT_ID",
		},
		{
			"SELECT LOCATION, COUNT(*) FROM EMP GROUP BY LOCATION HAVING LOCATION = 'NY'",
			"SELECT LOCATION, COUNT(*) FROM EMP WHERE LOCATION = 'NY' GROUP BY LOCATION",
		},
		{
			"SELECT DEPT_ID, MAX(SALARY) FROM EMP GROUP BY DEPT_ID HAVING DEPT_ID + 1 > 6",
			"SELECT DEPT_ID, MAX(SALARY) FROM EMP WHERE DEPT_ID > 5 GROUP BY DEPT_ID",
		},
		{
			"SELECT YEAR, SUM(AMOUNT) FROM BONUS GROUP BY YEAR HAVING YEAR = 2021",
			"SELECT YEAR, SUM(AMOUNT) FROM BONUS WHERE YEAR = 2021 GROUP BY YEAR",
		},
	} {
		g.add("FilterAggregateTranspose", Aggregate, c.q1, c.q2, "")
	}

	// AggregateMerge: nested roll-ups compose.
	for _, c := range []struct{ q1, q2 string }{
		{
			"SELECT LOCATION, SUM(S) FROM (SELECT LOCATION, DEPT_ID, SUM(SALARY) AS S FROM EMP GROUP BY LOCATION, DEPT_ID) T GROUP BY LOCATION",
			"SELECT LOCATION, SUM(SALARY) FROM EMP GROUP BY LOCATION",
		},
		{
			"SELECT LOCATION, MAX(M) FROM (SELECT LOCATION, DEPT_ID, MAX(SALARY) AS M FROM EMP GROUP BY LOCATION, DEPT_ID) T GROUP BY LOCATION",
			"SELECT LOCATION, MAX(SALARY) FROM EMP GROUP BY LOCATION",
		},
		{
			"SELECT LOCATION, MIN(M) FROM (SELECT LOCATION, DEPT_ID, MIN(SALARY) AS M FROM EMP GROUP BY LOCATION, DEPT_ID) T GROUP BY LOCATION",
			"SELECT LOCATION, MIN(SALARY) FROM EMP GROUP BY LOCATION",
		},
		{
			"SELECT LOCATION, SUM(C) FROM (SELECT LOCATION, DEPT_ID, COUNT(*) AS C FROM EMP GROUP BY LOCATION, DEPT_ID) T GROUP BY LOCATION",
			"SELECT LOCATION, COUNT(*) FROM EMP GROUP BY LOCATION",
		},
	} {
		g.add("AggregateMerge", Aggregate, c.q1, c.q2, "")
	}

	// The paper's §3.2 Example 1 family: constant-pinned grouping columns.
	for _, c := range []struct{ q1, q2 string }{
		{
			`SELECT SUM(T.SALARY), T.LOCATION FROM (SELECT SALARY, LOCATION FROM DEPT, EMP WHERE EMP.DEPT_ID = DEPT.DEPT_ID AND DEPT.DEPT_ID + 5 = 15) AS T GROUP BY T.LOCATION`,
			`SELECT SUM(T.SALARY), T.LOCATION FROM (SELECT SALARY, LOCATION, DEPT.DEPT_ID FROM EMP, DEPT WHERE EMP.DEPT_ID = DEPT.DEPT_ID AND DEPT.DEPT_ID = 10) AS T GROUP BY T.LOCATION, T.DEPT_ID`,
		},
		{
			"SELECT LOCATION, COUNT(*) FROM EMP WHERE DEPT_ID = 7 GROUP BY LOCATION",
			"SELECT LOCATION, COUNT(*) FROM EMP WHERE DEPT_ID + 1 = 8 GROUP BY LOCATION, DEPT_ID",
		},
		{
			"SELECT MIN(SALARY), LOCATION FROM EMP WHERE MGR_ID = 1 GROUP BY LOCATION",
			"SELECT MIN(SALARY), LOCATION FROM EMP WHERE MGR_ID = 1 GROUP BY LOCATION, MGR_ID",
		},
	} {
		g.add("ConstantGroupKey", Aggregate, c.q1, c.q2, "")
	}

	// Aggregate arguments compare semantically, not syntactically.
	g.add("AggArgSemantics", Aggregate,
		"SELECT DEPT_ID, SUM(SALARY + SALARY) FROM EMP GROUP BY DEPT_ID",
		"SELECT DEPT_ID, SUM(2 * SALARY) FROM EMP GROUP BY DEPT_ID",
		"")
	g.add("AggArgSemantics", Aggregate,
		"SELECT DEPT_ID, MAX(SALARY - 1) FROM EMP GROUP BY DEPT_ID",
		"SELECT DEPT_ID, MAX(SALARY + -1) FROM EMP GROUP BY DEPT_ID",
		"")

	// AVG and COUNT(DISTINCT).
	g.add("AggIdentity", Aggregate,
		"SELECT LOCATION, AVG(SALARY) FROM EMP GROUP BY LOCATION",
		"SELECT LOCATION, AVG(SALARY) FROM EMP GROUP BY LOCATION",
		"")
	g.add("AggIdentity", Aggregate,
		"SELECT DEPT_ID, COUNT(DISTINCT LOCATION) FROM EMP GROUP BY DEPT_ID",
		"SELECT DEPT_ID, COUNT(DISTINCT LOCATION) FROM EMP GROUP BY DEPT_ID",
		"")

	// Injective transforms of group keys preserve the partition.
	for _, c := range [][2]string{
		{"DEPT_ID", "DEPT_ID + 1"},
		{"SALARY", "SALARY - 3"},
		{"MGR_ID", "2 * MGR_ID"},
	} {
		g.add("GroupKeyInjective", Aggregate,
			fmt.Sprintf("SELECT COUNT(*) FROM EMP GROUP BY %s", c[0]),
			fmt.Sprintf("SELECT COUNT(*) FROM EMP GROUP BY %s", c[1]),
			"")
	}

	// Global aggregates.
	g.add("GlobalAgg", Aggregate,
		"SELECT SUM(SALARY), COUNT(*) FROM EMP WHERE DEPT_ID > 3",
		"SELECT SUM(SALARY), COUNT(*) FROM EMP WHERE DEPT_ID + 1 > 4",
		"")
	g.add("GlobalAgg", Aggregate,
		"SELECT MAX(BALANCE) FROM ACCOUNT",
		"SELECT MAX(BALANCE) FROM ACCOUNT",
		"")

	// Aggregate over a filter-merged input.
	for _, c := range []struct{ q1, q2 string }{
		{
			"SELECT DEPT_ID, SUM(SALARY) FROM (SELECT * FROM EMP WHERE SALARY > 2) T WHERE DEPT_ID < 8 GROUP BY DEPT_ID",
			"SELECT DEPT_ID, SUM(SALARY) FROM EMP WHERE SALARY > 2 AND DEPT_ID < 8 GROUP BY DEPT_ID",
		},
		{
			"SELECT LOCATION, COUNT(*) FROM (SELECT LOCATION FROM EMP WHERE DEPT_ID = 4) T GROUP BY LOCATION",
			"SELECT LOCATION, COUNT(*) FROM EMP WHERE DEPT_ID = 4 GROUP BY LOCATION",
		},
	} {
		g.add("AggregateFilterMerge", Aggregate, c.q1, c.q2, "")
	}

	// Aggregates over joins with commuted inputs.
	for _, c := range []struct{ q1, q2 string }{
		{
			"SELECT DEPT.DEPT_NAME, SUM(EMP.SALARY) FROM EMP, DEPT WHERE EMP.DEPT_ID = DEPT.DEPT_ID GROUP BY DEPT.DEPT_NAME",
			"SELECT DEPT.DEPT_NAME, SUM(EMP.SALARY) FROM DEPT, EMP WHERE DEPT.DEPT_ID = EMP.DEPT_ID GROUP BY DEPT.DEPT_NAME",
		},
		{
			"SELECT BONUS.YEAR, COUNT(*) FROM EMP, BONUS WHERE EMP.EMP_ID = BONUS.EMP_ID GROUP BY BONUS.YEAR",
			"SELECT BONUS.YEAR, COUNT(*) FROM BONUS, EMP WHERE BONUS.EMP_ID = EMP.EMP_ID GROUP BY BONUS.YEAR",
		},
	} {
		g.add("AggregateJoinCommute", Aggregate, c.q1, c.q2, "")
	}

	// UNION (distinct) both ways.
	g.add("UnionToDistinct", Aggregate,
		"SELECT DEPT_ID FROM EMP UNION SELECT DEPT_ID FROM DEPT",
		"SELECT DISTINCT DEPT_ID FROM (SELECT DEPT_ID FROM EMP UNION ALL SELECT DEPT_ID FROM DEPT) T",
		"")
	// Deduplicating a doubled bag equals deduplicating the single bag, but
	// the union branch counts differ (2 vs 1), so VeriVec cannot pair them —
	// a union+aggregate limitation (§7.4).
	g.add("UnionToDistinct", Aggregate,
		"SELECT LOCATION FROM EMP UNION SELECT LOCATION FROM EMP",
		"SELECT DISTINCT LOCATION FROM EMP",
		"limit:union+aggregate")
}

// ----------------------------------------------------------- OuterJoin ---

func (g *gen) outerJoinPairs() {
	// Null-rejecting filters turn outer joins into inner joins.
	for _, c := range []struct{ filter string }{
		{"DEPT.DEPT_NAME IS NOT NULL"},
		{"DEPT.BUDGET > 0"},
		{"DEPT.BUDGET = 100"},
		{"DEPT.DEPT_NAME = 'ENG'"},
		{"DEPT.BUDGET + 1 > 1"},
	} {
		g.add("OuterToInner", OuterJoin,
			fmt.Sprintf("SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP LEFT JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE %s", c.filter),
			fmt.Sprintf("SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE %s", c.filter),
			"")
	}

	// LEFT and RIGHT joins are mirror images.
	for _, c := range []struct{ sel, on string }{
		{"EMP.EMP_ID, DEPT.DEPT_NAME", "EMP.DEPT_ID = DEPT.DEPT_ID"},
		{"EMP.SALARY, DEPT.BUDGET", "EMP.DEPT_ID = DEPT.DEPT_ID"},
		{"EMP.ENAME, DEPT.DEPT_ID", "EMP.DEPT_ID = DEPT.DEPT_ID"},
		{"EMP.EMP_ID, DEPT.DEPT_ID", "EMP.MGR_ID = DEPT.DEPT_ID"},
	} {
		g.add("LeftRightSwap", OuterJoin,
			fmt.Sprintf("SELECT %s FROM EMP LEFT JOIN DEPT ON %s", c.sel, c.on),
			fmt.Sprintf("SELECT %s FROM DEPT RIGHT JOIN EMP ON %s", c.sel, c.on),
			"")
	}

	// FULL joins with a one-sided null-rejecting filter reduce to the
	// corresponding one-sided outer join.
	g.add("FullToLeft", OuterJoin,
		"SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP FULL OUTER JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE EMP.SALARY > 0",
		"SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP LEFT JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE EMP.SALARY > 0",
		"")
	g.add("FullToRight", OuterJoin,
		"SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP FULL OUTER JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE DEPT.BUDGET > 0",
		"SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP RIGHT JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE DEPT.BUDGET > 0",
		"")

	// Identical outer joins with cosmetic predicate differences.
	for _, c := range []struct{ on1, on2 string }{
		{"EMP.DEPT_ID = DEPT.DEPT_ID", "DEPT.DEPT_ID = EMP.DEPT_ID"},
		{"EMP.DEPT_ID = DEPT.DEPT_ID AND DEPT.BUDGET > 2", "DEPT.BUDGET > 2 AND EMP.DEPT_ID = DEPT.DEPT_ID"},
		{"EMP.MGR_ID = DEPT.DEPT_ID", "DEPT.DEPT_ID = EMP.MGR_ID"},
	} {
		g.add("OuterJoinCanon", OuterJoin,
			fmt.Sprintf("SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP LEFT JOIN DEPT ON %s", c.on1),
			fmt.Sprintf("SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP LEFT JOIN DEPT ON %s", c.on2),
			"")
	}

	// Filters on the preserved side commute with the outer join.
	for _, c := range []struct{ w1, w2 string }{
		{"EMP.SALARY > 10", "EMP.SALARY + 5 > 15"},
		{"EMP.LOCATION = 'NY'", "EMP.LOCATION = 'NY' AND 1 = 1"},
		{"EMP.SALARY BETWEEN 2 AND 8", "EMP.SALARY >= 2 AND EMP.SALARY <= 8"},
	} {
		g.add("OuterJoinFilterPush", OuterJoin,
			fmt.Sprintf("SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP LEFT JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE %s", c.w1),
			fmt.Sprintf("SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP LEFT JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE %s", c.w2),
			"")
	}
}

// -------------------------------------------------------------- Extras ---

// extraPairs rounds the suite out with additional rule instances across
// all three categories.
func (g *gen) extraPairs() {
	for _, c := range []struct{ p1, p2 string }{
		{"BALANCE - 10 > 0", "BALANCE > 10"},
		{"BALANCE >= 5 AND BALANCE >= 3", "BALANCE >= 5"},
		{"EMP_ID = 2 OR EMP_ID = 2", "EMP_ID = 2"},
	} {
		g.add("ReduceExpressions", USPJ,
			fmt.Sprintf("SELECT ACCT_ID FROM ACCOUNT WHERE %s", c.p1),
			fmt.Sprintf("SELECT ACCT_ID FROM ACCOUNT WHERE %s", c.p2),
			"")
	}
	g.add("FilterMerge", USPJ,
		"SELECT * FROM (SELECT * FROM (SELECT * FROM EMP WHERE SALARY > 1) A WHERE SALARY > 2) B WHERE SALARY > 3",
		"SELECT * FROM EMP WHERE SALARY > 3",
		"")
	g.add("JoinCommute", USPJ,
		"SELECT E.ENAME FROM EMP E, DEPT D, ACCOUNT A WHERE E.DEPT_ID = D.DEPT_ID AND E.EMP_ID = A.EMP_ID",
		"SELECT E.ENAME FROM ACCOUNT A, DEPT D, EMP E WHERE A.EMP_ID = E.EMP_ID AND E.DEPT_ID = D.DEPT_ID",
		"")
	g.add("FilterUnionTranspose", USPJ,
		"SELECT * FROM (SELECT SALARY FROM EMP UNION ALL SELECT BALANCE FROM ACCOUNT) T WHERE SALARY > 7",
		"SELECT SALARY FROM EMP WHERE SALARY > 7 UNION ALL SELECT BALANCE FROM ACCOUNT WHERE BALANCE > 7",
		"")

	g.add("AggregateProjectMerge", Aggregate,
		"SELECT E, SUM(B) FROM (SELECT EMP_ID AS E, BALANCE AS B FROM ACCOUNT) T GROUP BY E",
		"SELECT EMP_ID, SUM(BALANCE) FROM ACCOUNT GROUP BY EMP_ID",
		"")
	g.add("FilterAggregateTranspose", Aggregate,
		"SELECT EMP_ID, COUNT(*) FROM BONUS GROUP BY EMP_ID HAVING EMP_ID > 2",
		"SELECT EMP_ID, COUNT(*) FROM BONUS WHERE EMP_ID > 2 GROUP BY EMP_ID",
		"")
	g.add("DistinctToAggregate", Aggregate,
		"SELECT DISTINCT YEAR FROM BONUS WHERE AMOUNT > 0",
		"SELECT YEAR FROM BONUS WHERE AMOUNT > 0 GROUP BY YEAR",
		"")
	g.add("GlobalAgg", Aggregate,
		"SELECT MIN(AMOUNT), MAX(AMOUNT) FROM BONUS WHERE YEAR = 2020",
		"SELECT MIN(AMOUNT), MAX(AMOUNT) FROM BONUS WHERE YEAR + 1 = 2021",
		"")

	g.add("OuterToInner", OuterJoin,
		"SELECT E.EMP_ID, A.BALANCE FROM EMP E LEFT JOIN ACCOUNT A ON E.EMP_ID = A.EMP_ID WHERE A.BALANCE >= 0",
		"SELECT E.EMP_ID, A.BALANCE FROM EMP E JOIN ACCOUNT A ON E.EMP_ID = A.EMP_ID WHERE A.BALANCE >= 0",
		"")
	g.add("LeftRightSwap", OuterJoin,
		"SELECT B.AMOUNT, E.ENAME FROM BONUS B LEFT JOIN EMP E ON B.EMP_ID = E.EMP_ID",
		"SELECT B.AMOUNT, E.ENAME FROM EMP E RIGHT JOIN BONUS B ON B.EMP_ID = E.EMP_ID",
		"")
	g.add("OuterJoinFilterPush", OuterJoin,
		"SELECT E.EMP_ID, D.DEPT_NAME FROM EMP E LEFT JOIN DEPT D ON E.DEPT_ID = D.DEPT_ID WHERE E.SALARY * 2 > 6",
		"SELECT E.EMP_ID, D.DEPT_NAME FROM EMP E LEFT JOIN DEPT D ON E.DEPT_ID = D.DEPT_ID WHERE E.SALARY > 3",
		"")
}

// --------------------------------------------------------- Limitations ---

// limitationPairs are equivalent pairs the §7.4 limitation classes leave
// unproved: union+aggregate interchange, aggregate-join transposition, and
// reasoning requiring richer integrity constraints.
func (g *gen) limitationPairs() {
	// Union+aggregate: aggregating a partition equals aggregating the
	// whole (needs a normalization rule SPES lacks).
	partitions := [][3]string{
		{"SALARY > 0", "SALARY <= 0", "SALARY IS NULL"},
		{"DEPT_ID > 5", "DEPT_ID <= 5", "DEPT_ID IS NULL"},
		{"MGR_ID = 1", "MGR_ID <> 1", "MGR_ID IS NULL"},
	}
	for _, p := range partitions {
		g.add("AggregateUnionMerge", Aggregate,
			fmt.Sprintf(`SELECT SUM(SALARY) FROM (SELECT SALARY FROM EMP WHERE %s UNION ALL SELECT SALARY FROM EMP WHERE %s UNION ALL SELECT SALARY FROM EMP WHERE %s) T`, p[0], p[1], p[2]),
			"SELECT SUM(SALARY) FROM EMP",
			"limit:union+aggregate")
		g.add("AggregateUnionMerge", Aggregate,
			fmt.Sprintf(`SELECT COUNT(*) FROM (SELECT EMP_ID FROM EMP WHERE %s UNION ALL SELECT EMP_ID FROM EMP WHERE %s UNION ALL SELECT EMP_ID FROM EMP WHERE %s) T`, p[0], p[1], p[2]),
			"SELECT COUNT(*) FROM EMP",
			"limit:union+aggregate")
	}

	// Aggregate-join transposition.
	for _, c := range []struct{ q1, q2 string }{
		{
			"SELECT D.DEPT_NAME, X.C FROM DEPT D JOIN (SELECT DEPT_ID, COUNT(*) AS C FROM EMP GROUP BY DEPT_ID) X ON D.DEPT_ID = X.DEPT_ID",
			"SELECT D.DEPT_NAME, COUNT(*) FROM DEPT D JOIN EMP E ON D.DEPT_ID = E.DEPT_ID GROUP BY D.DEPT_ID, D.DEPT_NAME",
		},
		{
			"SELECT D.DEPT_NAME, X.S FROM DEPT D JOIN (SELECT DEPT_ID, SUM(SALARY) AS S FROM EMP GROUP BY DEPT_ID) X ON D.DEPT_ID = X.DEPT_ID",
			"SELECT D.DEPT_NAME, SUM(E.SALARY) FROM DEPT D JOIN EMP E ON D.DEPT_ID = E.DEPT_ID GROUP BY D.DEPT_ID, D.DEPT_NAME",
		},
		{
			"SELECT D.BUDGET, X.M FROM DEPT D JOIN (SELECT DEPT_ID, MAX(SALARY) AS M FROM EMP GROUP BY DEPT_ID) X ON D.DEPT_ID = X.DEPT_ID",
			"SELECT D.BUDGET, MAX(E.SALARY) FROM DEPT D JOIN EMP E ON D.DEPT_ID = E.DEPT_ID GROUP BY D.DEPT_ID, D.BUDGET",
		},
		{
			"SELECT D.DEPT_ID, X.M FROM DEPT D JOIN (SELECT DEPT_ID, MIN(SALARY) AS M FROM EMP GROUP BY DEPT_ID) X ON D.DEPT_ID = X.DEPT_ID",
			"SELECT D.DEPT_ID, MIN(E.SALARY) FROM DEPT D JOIN EMP E ON D.DEPT_ID = E.DEPT_ID GROUP BY D.DEPT_ID",
		},
	} {
		g.add("AggregateJoinTranspose", Aggregate, c.q1, c.q2, "limit:join+aggregate")
	}

	// Integrity constraints: joining on a unique key has multiplicity one,
	// so IN and JOIN coincide — provable via the join-to-semi-join
	// extension rule plus cardinality-insensitive EXISTS naming.
	for _, c := range []struct{ q1, q2 string }{
		{
			"SELECT E.EMP_ID, E.SALARY FROM EMP E JOIN DEPT D ON E.DEPT_ID = D.DEPT_ID",
			"SELECT E.EMP_ID, E.SALARY FROM EMP E WHERE E.DEPT_ID IN (SELECT DEPT_ID FROM DEPT)",
		},
		{
			"SELECT B.AMOUNT FROM BONUS B JOIN EMP E ON B.EMP_ID = E.EMP_ID",
			"SELECT B.AMOUNT FROM BONUS B WHERE B.EMP_ID IN (SELECT EMP_ID FROM EMP)",
		},
	} {
		g.add("JoinToSemiJoinPK", USPJ, c.q1, c.q2, "")
	}

	// COUNT of a NOT NULL column is COUNT(*): provable via the extension
	// normalization rule (countNotNull in internal/normalize).
	g.add("CountNotNullColumn", Aggregate,
		"SELECT DEPT_ID, COUNT(EMP_ID) FROM EMP GROUP BY DEPT_ID",
		"SELECT DEPT_ID, COUNT(*) FROM EMP GROUP BY DEPT_ID",
		"")
	g.add("CountNotNullColumn", Aggregate,
		"SELECT COUNT(ACCT_ID) FROM ACCOUNT",
		"SELECT COUNT(*) FROM ACCOUNT",
		"")

	// Integer-only predicate equivalences: sound to refuse over the
	// solver's rational relaxation (x = 6.5 distinguishes them), but
	// integer column semantics make them equivalent in practice.
	g.add("IntegerTightening", USPJ,
		"SELECT EMP_ID FROM EMP WHERE SALARY >= 7",
		"SELECT EMP_ID FROM EMP WHERE SALARY + 1 > 7",
		"limit:integer-semantics")
}

// --------------------------------------------------------- Unsupported ---

// unsupportedPairs exercise features outside the supported subset,
// reproducing the 232-pair suite's unsupported fraction (the paper reports
// 112 of 232: CAST and features Calcite's own compiler rejected).
func (g *gen) unsupportedPairs() {
	casts := []string{"FLOAT", "VARCHAR(10)", "INTEGER", "DECIMAL(10,2)"}
	cols := []string{"SALARY", "DEPT_ID", "EMP_ID", "MGR_ID", "BUDGET"}
	n := 0
	for _, typ := range casts {
		for _, col := range cols {
			tbl := "EMP"
			if col == "BUDGET" {
				tbl = "DEPT"
			}
			g.add("CastProject", USPJ,
				fmt.Sprintf("SELECT CAST(%s AS %s) FROM %s", col, typ, tbl),
				fmt.Sprintf("SELECT CAST(%s AS %s) FROM %s WHERE 1 = 1", col, typ, tbl),
				"unsupported:CAST")
			n++
			if n >= 38 {
				break
			}
		}
		if n >= 38 {
			break
		}
	}
	// CAST inside predicates and aggregates.
	for i := 0; i < 6; i++ {
		g.add("CastPredicate", Aggregate,
			fmt.Sprintf("SELECT SUM(CAST(SALARY AS FLOAT)) FROM EMP WHERE DEPT_ID = %d GROUP BY LOCATION", i),
			fmt.Sprintf("SELECT SUM(CAST(SALARY AS FLOAT)) FROM EMP WHERE DEPT_ID = %d GROUP BY LOCATION", i),
			"unsupported:CAST")
	}

	// Window functions (rejected by the parser, mirroring queries Calcite
	// compiled but SPES's categories cannot express).
	windows := []string{
		"RANK() OVER (PARTITION BY DEPT_ID ORDER BY SALARY)",
		"ROW_NUMBER() OVER (ORDER BY EMP_ID)",
		"SUM(SALARY) OVER (PARTITION BY LOCATION)",
		"AVG(SALARY) OVER (PARTITION BY DEPT_ID)",
		"COUNT(*) OVER (PARTITION BY MGR_ID)",
	}
	for i := 0; i < 25; i++ {
		w := windows[i%len(windows)]
		g.add("WindowFunction", USPJ,
			fmt.Sprintf("SELECT EMP_ID, %s FROM EMP WHERE SALARY > %d", w, i),
			fmt.Sprintf("SELECT EMP_ID, %s FROM EMP WHERE SALARY > %d", w, i),
			"unsupported:window")
	}

	// LIMIT / OFFSET / FETCH.
	for i := 0; i < 20; i++ {
		g.add("SortLimit", USPJ,
			fmt.Sprintf("SELECT EMP_ID FROM EMP ORDER BY SALARY LIMIT %d", i+1),
			fmt.Sprintf("SELECT EMP_ID FROM EMP ORDER BY SALARY LIMIT %d", i+1),
			"unsupported:LIMIT")
	}

	// INTERSECT / EXCEPT (not in the grammar).
	setOps := []string{"INTERSECT", "EXCEPT"}
	for i := 0; i < 10; i++ {
		op := setOps[i%2]
		g.add("SetOp", USPJ,
			fmt.Sprintf("SELECT DEPT_ID FROM EMP %s SELECT DEPT_ID FROM DEPT", op),
			fmt.Sprintf("SELECT DEPT_ID FROM EMP %s SELECT DEPT_ID FROM DEPT", op),
			"unsupported:"+op)
	}

	// VALUES constructors.
	for i := 0; i < 3; i++ {
		g.add("Values", USPJ,
			fmt.Sprintf("SELECT * FROM (VALUES (1, %d)) AS T", i),
			fmt.Sprintf("SELECT * FROM (VALUES (1, %d)) AS T", i),
			"unsupported:VALUES")
	}
}
