package corpus

import (
	"math/rand"
	"testing"

	"spes/internal/datagen"
	"spes/internal/exec"
	"spes/internal/plan"
)

func TestWorkloadSizesAndDeterminism(t *testing.T) {
	w1 := ProductionWorkload(42, 0.02)
	w2 := ProductionWorkload(42, 0.02)
	if len(w1.Queries) != len(w2.Queries) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(w1.Queries), len(w2.Queries))
	}
	for i := range w1.Queries {
		if w1.Queries[i].SQL != w2.Queries[i].SQL {
			t.Fatal("non-deterministic SQL")
		}
	}
	sets := map[int]int{}
	for _, q := range w1.Queries {
		sets[q.Set]++
	}
	if len(sets) != 3 {
		t.Errorf("want 3 sets, got %v", sets)
	}
}

func TestWorkloadFullScaleSize(t *testing.T) {
	w := ProductionWorkload(7, 1.0)
	if n := len(w.Queries); n < 9486 || n > 11500 {
		t.Errorf("full-scale workload has %d queries, want ≈9486 (sets overshoot by cluster granularity)", n)
	}
}

func TestWorkloadQueriesBuild(t *testing.T) {
	w := ProductionWorkload(3, 0.01)
	b := plan.NewBuilder(w.Catalog)
	total, nodes := 0, 0
	for _, q := range w.Queries {
		n, err := b.BuildSQL(q.SQL)
		if err != nil {
			t.Fatalf("query %d does not build: %v\n%s", q.ID, err, q.SQL)
		}
		total++
		nodes += plan.CountNodes(n)
	}
	avg := float64(nodes) / float64(total)
	t.Logf("%d queries, mean plan nodes %.1f", total, avg)
	// Figure 7 calibration: production queries are an order of magnitude
	// more complex than the Calcite suite's (paper: 45.4 vs 5.4).
	if avg < 20 || avg > 80 {
		t.Errorf("mean complexity %.1f outside the calibrated band [20, 80]", avg)
	}
}

// TestClusterEquivalence checks the generator's core promise: queries in
// the same cluster are bag-equivalent (they are rewrites of one base).
func TestClusterEquivalence(t *testing.T) {
	w := ProductionWorkload(11, 0.01)
	b := plan.NewBuilder(w.Catalog)
	byCluster := map[int][]WorkloadQuery{}
	for _, q := range w.Queries {
		byCluster[q.Cluster] = append(byCluster[q.Cluster], q)
	}
	r := rand.New(rand.NewSource(5))
	checked := 0
	for _, members := range byCluster {
		if len(members) < 2 || checked > 25 {
			continue
		}
		checked++
		base, err := b.BuildSQL(members[0].SQL)
		if err != nil {
			t.Fatal(err)
		}
		other, err := b.BuildSQL(members[1].SQL)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			db := datagen.Random(w.Catalog, r, datagen.Options{MaxRows: 4, IntRange: 1200})
			r1, err := exec.Run(db, base)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := exec.Run(db, other)
			if err != nil {
				t.Fatal(err)
			}
			if !exec.BagEqual(r1, r2) {
				t.Fatalf("cluster members not equivalent:\n%s\n%s", members[0].SQL, members[1].SQL)
			}
		}
	}
	if checked == 0 {
		t.Error("no multi-member clusters generated")
	}
}

func TestWorkloadMixesJoinAndAgg(t *testing.T) {
	w := ProductionWorkload(9, 0.02)
	joins, aggs := 0, 0
	for _, q := range w.Queries {
		if q.HasJoin {
			joins++
		}
		if q.HasAgg {
			aggs++
		}
	}
	if joins == 0 || aggs == 0 {
		t.Errorf("workload must mix joins (%d) and aggregates (%d)", joins, aggs)
	}
}
