package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spes/internal/corpus"
	"spes/internal/server"
)

const (
	eqSQL1 = "SELECT * FROM (SELECT * FROM EMP WHERE DEPT_ID < 9) T WHERE SALARY > 5"
	eqSQL2 = "SELECT * FROM EMP WHERE DEPT_ID < 9 AND SALARY > 5"
)

// testShard is one real spes-serve stack behind an httptest listener.
type testShard struct {
	id  string
	srv *server.Server
	ts  *httptest.Server
}

func newTestShard(t *testing.T, id string, cfg server.Config) *testShard {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = corpus.Catalog()
	}
	cfg.ShardID = id
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("shard %s: %v", id, err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return &testShard{id: id, srv: s, ts: ts}
}

func newTestRouter(t *testing.T, shards []*testShard, mut func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Catalog:       corpus.Catalog(),
		ProbeInterval: -1, // tests drive ProbeNow themselves
		RetryAfterCap: 50 * time.Millisecond,
	}
	for _, sh := range shards {
		cfg.Shards = append(cfg.Shards, Shard{ID: sh.id, URL: sh.ts.URL})
	}
	if mut != nil {
		mut(&cfg)
	}
	rt := NewRouter(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	return rt
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

// clusterBatch builds a batch with enough distinct pairs that both shards
// of a 2-ring get work: the Calcite corpus plus the known-equivalent pair.
func clusterBatch(n int) server.BatchRequest {
	pool := corpus.CalcitePairs()
	req := server.BatchRequest{}
	for i := 0; i < n; i++ {
		p := pool[i%len(pool)]
		req.Pairs = append(req.Pairs, server.BatchPairJSON{
			ID: fmt.Sprintf("p%d", i), SQL1: p.SQL1, SQL2: p.SQL2,
		})
	}
	return req
}

func verdictsOf(results []server.VerifyResponse) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Verdict
	}
	return out
}

// TestRouterBatchRoutesAndReassembles: a batch through a 2-shard cluster
// returns verdicts identical, in order, to the same batch on a single
// node, with both shards doing work and per-result shard provenance set.
func TestRouterBatchRoutesAndReassembles(t *testing.T) {
	single := newTestShard(t, "solo", server.Config{})
	a := newTestShard(t, "a", server.Config{})
	b := newTestShard(t, "b", server.Config{})
	rt := newTestRouter(t, []*testShard{a, b}, nil)
	h := rt.Handler()

	req := clusterBatch(24)

	wSingle := postJSON(t, single.srv.Handler(), "/v1/verify/batch", req)
	if wSingle.Code != 200 {
		t.Fatalf("single-node batch: %d %s", wSingle.Code, wSingle.Body.String())
	}
	ref := decode[server.BatchResponse](t, wSingle)

	w := postJSON(t, h, "/v1/verify/batch", req)
	if w.Code != 200 {
		t.Fatalf("routed batch: %d %s", w.Code, w.Body.String())
	}
	got := decode[server.BatchResponse](t, w)

	if len(got.Results) != len(req.Pairs) {
		t.Fatalf("routed batch returned %d results for %d pairs", len(got.Results), len(req.Pairs))
	}
	for i, r := range got.Results {
		if r.ID != req.Pairs[i].ID {
			t.Fatalf("result %d out of order: got ID %q want %q", i, r.ID, req.Pairs[i].ID)
		}
	}
	refV, gotV := verdictsOf(ref.Results), verdictsOf(got.Results)
	for i := range refV {
		if refV[i] != gotV[i] {
			t.Fatalf("verdict %d: cluster %q != single-node %q", i, gotV[i], refV[i])
		}
	}

	shardsUsed := map[string]int{}
	for _, r := range got.Results {
		shardsUsed[r.Shard]++
	}
	if len(shardsUsed) != 2 || shardsUsed["a"] == 0 || shardsUsed["b"] == 0 {
		t.Fatalf("expected both shards to verify part of the batch, got %v", shardsUsed)
	}
	if ap, bp := a.srv.Engine().Stats().Pairs, b.srv.Engine().Stats().Pairs; ap == 0 || bp == 0 {
		t.Fatalf("engine pair counts: a=%d b=%d — fingerprint routing left a shard idle", ap, bp)
	}
}

// TestRouterFingerprintLocality: recurrences of the same pair always land
// on the same shard — the no-N-way-dilution property the shard key exists
// for.
func TestRouterFingerprintLocality(t *testing.T) {
	a := newTestShard(t, "a", server.Config{})
	b := newTestShard(t, "b", server.Config{})
	rt := newTestRouter(t, []*testShard{a, b}, nil)
	h := rt.Handler()

	req := server.BatchRequest{}
	for i := 0; i < 6; i++ {
		req.Pairs = append(req.Pairs, server.BatchPairJSON{
			ID: fmt.Sprintf("hot%d", i), SQL1: eqSQL1, SQL2: eqSQL2,
		})
	}
	w := postJSON(t, h, "/v1/verify/batch", req)
	if w.Code != 200 {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	got := decode[server.BatchResponse](t, w)
	owner := got.Results[0].Shard
	for i, r := range got.Results {
		if r.Shard != owner {
			t.Fatalf("recurrence %d of an identical pair verified on %q, first on %q", i, r.Shard, owner)
		}
	}
}

// TestRouterSingleVerify: /v1/verify routes to a shard and relays its
// response — including shard provenance and, for bad SQL, the shard's 400.
func TestRouterSingleVerify(t *testing.T) {
	a := newTestShard(t, "a", server.Config{})
	b := newTestShard(t, "b", server.Config{})
	rt := newTestRouter(t, []*testShard{a, b}, nil)
	h := rt.Handler()

	w := postJSON(t, h, "/v1/verify", server.VerifyRequest{SQL1: eqSQL1, SQL2: eqSQL2})
	if w.Code != 200 {
		t.Fatalf("verify: %d %s", w.Code, w.Body.String())
	}
	resp := decode[server.VerifyResponse](t, w)
	if resp.Verdict != "equivalent" {
		t.Fatalf("verdict %q, want equivalent", resp.Verdict)
	}
	if resp.Shard != "a" && resp.Shard != "b" {
		t.Fatalf("response shard %q names no configured shard", resp.Shard)
	}

	w = postJSON(t, h, "/v1/verify", server.VerifyRequest{SQL1: "SELEC 1", SQL2: eqSQL2})
	if w.Code != 400 {
		t.Fatalf("bad SQL through the router: %d %s (want the shard's 400 relayed)", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "bad_query") {
		t.Fatalf("400 body lost the shard's error code: %s", w.Body.String())
	}
}

// TestRouterHonorsRetryAfter: a shedding shard's Retry-After value is
// respected — the router waits at least the hinted time (here capped by
// RetryAfterCap) before retrying, and the retry succeeds.
func TestRouterHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap atomic.Int64
	var last atomic.Int64
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/verify/batch" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1") // 1s hint; router caps at RetryAfterCap
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		var req server.BatchRequest
		json.NewDecoder(r.Body).Decode(&req)
		resp := server.BatchResponse{}
		for _, p := range req.Pairs {
			resp.Results = append(resp.Results, server.VerifyResponse{ID: p.ID, Verdict: "not-proved"})
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer shed.Close()

	const capMS = 60
	rt := NewRouter(Config{
		Catalog:       corpus.Catalog(),
		Shards:        []Shard{{ID: "shed", URL: shed.URL}},
		ProbeInterval: -1,
		RetryAfterCap: capMS * time.Millisecond,
	})
	defer rt.Shutdown(context.Background())

	w := postJSON(t, rt.Handler(), "/v1/verify/batch", clusterBatch(3))
	if w.Code != 200 {
		t.Fatalf("batch after shed: %d %s", w.Code, w.Body.String())
	}
	if calls.Load() != 2 {
		t.Fatalf("shard saw %d calls, want shed-then-retry", calls.Load())
	}
	if got := time.Duration(gap.Load()); got < capMS*time.Millisecond {
		t.Fatalf("router retried after %v; must honor Retry-After up to the %dms cap", got, capMS)
	}
	if rt.retriesT.Value() == 0 {
		t.Fatal("shed retry not counted in metrics")
	}
}

// TestRouterShedFailsOverAfterBoundedRetries: a shard that never stops
// shedding is abandoned after MaxShedRetries and its pairs complete on
// the other shard — without the shedding shard being marked down.
func TestRouterShedFailsOverAfterBoundedRetries(t *testing.T) {
	var sheds atomic.Int32
	alwaysShed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sheds.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer alwaysShed.Close()
	b := newTestShard(t, "b", server.Config{})

	rt := newTestRouter(t, []*testShard{b}, func(cfg *Config) {
		cfg.Shards = append(cfg.Shards, Shard{ID: "shedder", URL: alwaysShed.URL})
		cfg.MaxShedRetries = 2
		cfg.RetryAfterCap = 10 * time.Millisecond
	})
	h := rt.Handler()

	req := clusterBatch(16)
	w := postJSON(t, h, "/v1/verify/batch", req)
	if w.Code != 200 {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	got := decode[server.BatchResponse](t, w)
	for i, r := range got.Results {
		if r.Shard != "b" {
			t.Fatalf("result %d verified on %q; everything must have failed over to b", i, r.Shard)
		}
	}
	if rt.failoversT.Value() == 0 {
		t.Fatal("failover not counted")
	}
	// Shedding is admission pressure, not death: the shard must still be
	// in the membership as healthy (only request-scoped exclusion).
	rt.mu.Lock()
	healthy := rt.shards["shedder"].healthy
	rt.mu.Unlock()
	if !healthy {
		t.Fatal("shedding shard was marked down; 503 must not eject a live shard")
	}
}

// TestRouterFailoverOnDeadShard: killing a shard makes its pairs fail
// over to the survivor with verdicts identical to a single-node run, and
// the dead shard leaves the ring.
func TestRouterFailoverOnDeadShard(t *testing.T) {
	single := newTestShard(t, "solo", server.Config{})
	a := newTestShard(t, "a", server.Config{})
	b := newTestShard(t, "b", server.Config{})
	rt := newTestRouter(t, []*testShard{a, b}, nil)
	h := rt.Handler()

	req := clusterBatch(24)
	ref := decode[server.BatchResponse](t, postJSON(t, single.srv.Handler(), "/v1/verify/batch", req))

	// Kill b without telling the router: the next batch discovers it the
	// hard way, mid-request.
	b.ts.Close()

	w := postJSON(t, h, "/v1/verify/batch", req)
	if w.Code != 200 {
		t.Fatalf("batch with a dead shard: %d %s", w.Code, w.Body.String())
	}
	got := decode[server.BatchResponse](t, w)
	refV, gotV := verdictsOf(ref.Results), verdictsOf(got.Results)
	for i := range refV {
		if refV[i] != gotV[i] {
			t.Fatalf("verdict %d changed across failover: %q != %q", i, gotV[i], refV[i])
		}
	}
	for i, r := range got.Results {
		if r.Shard != "a" {
			t.Fatalf("result %d on %q; the survivor must own everything", i, r.Shard)
		}
	}
	if rt.failoversT.Value() == 0 {
		t.Fatal("failover not counted")
	}
	if ring := rt.ringSnapshot(); ring.Size() != 1 {
		t.Fatalf("ring size %d after a transport failure; dead shard must leave", ring.Size())
	}
}

// TestRouterAllShardsDead: with no live shard, a batch is answered with a
// 503 (not fabricated verdicts) and single verifies likewise.
func TestRouterAllShardsDead(t *testing.T) {
	a := newTestShard(t, "a", server.Config{})
	rt := newTestRouter(t, []*testShard{a}, nil)
	a.ts.Close()

	w := postJSON(t, rt.Handler(), "/v1/verify/batch", clusterBatch(4))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("batch with cluster down: %d %s (want 503)", w.Code, w.Body.String())
	}
	w = postJSON(t, rt.Handler(), "/v1/verify", server.VerifyRequest{SQL1: eqSQL1, SQL2: eqSQL2})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("verify with cluster down: %d %s (want 503)", w.Code, w.Body.String())
	}
}

// TestRouterProbeDrainsAndRestores: the prober takes a draining shard out
// of the ring and puts a recovered one back in.
func TestRouterProbeDrainsAndRestores(t *testing.T) {
	state := atomic.Value{}
	state.Store("ok")
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		st := state.Load().(string)
		code := http.StatusOK
		if st != "ok" {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"status":%q}`, st)
	}))
	defer fake.Close()
	b := newTestShard(t, "b", server.Config{})

	rt := newTestRouter(t, []*testShard{b}, func(cfg *Config) {
		cfg.Shards = append(cfg.Shards, Shard{ID: "flappy", URL: fake.URL})
	})

	ctx := context.Background()
	rt.ProbeNow(ctx)
	if got := rt.ringSnapshot().Size(); got != 2 {
		t.Fatalf("ring size %d with both shards healthy", got)
	}

	state.Store("draining")
	rt.ProbeNow(ctx)
	if got := rt.ringSnapshot().Size(); got != 1 {
		t.Fatalf("ring size %d with one shard draining", got)
	}
	rt.mu.Lock()
	drng := rt.shards["flappy"].draining
	rt.mu.Unlock()
	if !drng {
		t.Fatal("draining state not recorded")
	}

	state.Store("ok")
	rt.ProbeNow(ctx)
	if got := rt.ringSnapshot().Size(); got != 2 {
		t.Fatalf("ring size %d after recovery", got)
	}
}

// TestRouterClusterStats: /v1/cluster/stats aggregates per-shard engine
// snapshots after routed traffic.
func TestRouterClusterStats(t *testing.T) {
	a := newTestShard(t, "a", server.Config{})
	b := newTestShard(t, "b", server.Config{})
	rt := newTestRouter(t, []*testShard{a, b}, nil)
	h := rt.Handler()

	if w := postJSON(t, h, "/v1/verify/batch", clusterBatch(24)); w.Code != 200 {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}

	r := httptest.NewRequest(http.MethodGet, "/v1/cluster/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != 200 {
		t.Fatalf("cluster stats: %d %s", w.Code, w.Body.String())
	}
	stats := decode[ClusterStats](t, w)
	if stats.Totals.Shards != 2 {
		t.Fatalf("%d shards reporting, want 2: %s", stats.Totals.Shards, w.Body.String())
	}
	if stats.Totals.Pairs != 24 {
		t.Fatalf("aggregate pairs %d, want 24", stats.Totals.Pairs)
	}
	var perShard int64
	for _, sh := range stats.Shards {
		if sh.Engine == nil {
			t.Fatalf("shard %s reported no engine stats", sh.ID)
		}
		perShard += sh.Engine.Pairs
	}
	if perShard != stats.Totals.Pairs {
		t.Fatalf("per-shard pairs sum %d != totals %d", perShard, stats.Totals.Pairs)
	}
	if stats.Router.ForwardAttempts == 0 {
		t.Fatal("router counters missing from cluster stats")
	}

	// The router's own /metrics carries the forward counters.
	mw := httptest.NewRecorder()
	h.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := mw.Body.String()
	for _, want := range []string{
		"spes_router_forwards_total", "spes_router_ring_size 2",
		"spes_router_requests_total", "spes_router_pairs_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("router /metrics missing %q:\n%s", want, body)
		}
	}
}

// TestRouterValidation mirrors the shard's 400 discipline.
func TestRouterValidation(t *testing.T) {
	a := newTestShard(t, "a", server.Config{})
	rt := newTestRouter(t, []*testShard{a}, nil)
	h := rt.Handler()

	cases := []struct {
		name string
		body any
		want string
	}{
		{"empty pairs", server.BatchRequest{}, "bad_request"},
		{"missing sql", server.BatchRequest{Pairs: []server.BatchPairJSON{{SQL1: "SELECT 1"}}}, "bad_request"},
	}
	for _, tc := range cases {
		w := postJSON(t, h, "/v1/verify/batch", tc.body)
		if w.Code != 400 || !strings.Contains(w.Body.String(), tc.want) {
			t.Fatalf("%s: %d %s", tc.name, w.Code, w.Body.String())
		}
	}
	if w := postJSON(t, h, "/v1/verify", server.VerifyRequest{SQL1: eqSQL1}); w.Code != 400 {
		t.Fatalf("single verify missing sql2: %d", w.Code)
	}
	// Shard pair counts must be untouched: validation failures never
	// reach the fleet.
	if got := a.srv.Engine().Stats().Pairs; got != 0 {
		t.Fatalf("validation errors leaked %d pairs to a shard", got)
	}
}

// TestRouterReadmitsRecoveredShard pins the re-admission loop: a shard
// that dies hard (listener severed) is discovered down mid-batch, then —
// after it restarts on the SAME address under the SAME ID — the jittered
// reprobe loop puts it back in the ring without any traffic or manual
// ProbeNow, and subsequent batches route to it again.
func TestRouterReadmitsRecoveredShard(t *testing.T) {
	a := newTestShard(t, "a", server.Config{})

	// Shard b runs on a manual listener so its address survives the kill:
	// re-admission only makes sense if the reborn process is reachable at
	// the URL the router was configured with.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	b1, err := server.New(server.Config{Catalog: corpus.Catalog(), ShardID: "b"})
	if err != nil {
		t.Fatal(err)
	}
	go b1.Serve(l)

	rt := NewRouter(Config{
		Catalog:       corpus.Catalog(),
		Shards:        []Shard{{ID: "a", URL: a.ts.URL}, {ID: "b", URL: "http://" + addr}},
		ProbeInterval: -1, // only the reprobe loop may re-admit
		ReprobeBase:   10 * time.Millisecond,
		ReprobeMax:    50 * time.Millisecond,
		RetryAfterCap: 50 * time.Millisecond,
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	h := rt.Handler()

	// Kill b hard and let a batch discover it: transport errors mark it
	// down and kick the reprobe loop.
	l.Close()
	{
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		b1.Shutdown(ctx)
		cancel()
	}
	if w := postJSON(t, h, "/v1/verify/batch", clusterBatch(24)); w.Code != 200 {
		t.Fatalf("batch with dead shard: %d %s", w.Code, w.Body.String())
	}
	if ring := rt.ringSnapshot(); ring.Size() != 1 {
		t.Fatalf("ring size %d after kill, want 1", ring.Size())
	}

	// While b is down the reprobe loop must be probing it, not silent.
	deadline := time.Now().Add(5 * time.Second)
	for rt.reprobes.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reprobe loop never probed the down shard")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rebirth on the same address (the OS may hold the port briefly).
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	b2, err := server.New(server.Config{Catalog: corpus.Catalog(), ShardID: "b"})
	if err != nil {
		t.Fatal(err)
	}
	go b2.Serve(l2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		b2.Shutdown(ctx)
	})

	// No traffic, no ProbeNow: the backoff loop alone must re-admit it.
	for rt.ringSnapshot().Size() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted shard never re-admitted (reprobes=%d)", rt.reprobes.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And the re-admitted shard serves real traffic again.
	before := b2.Engine().Stats().Pairs
	if w := postJSON(t, h, "/v1/verify/batch", clusterBatch(24)); w.Code != 200 {
		t.Fatalf("batch after rejoin: %d %s", w.Code, w.Body.String())
	}
	if got := b2.Engine().Stats().Pairs; got == before {
		t.Fatal("re-admitted shard received no pairs")
	}
}
