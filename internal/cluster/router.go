package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spes/internal/engine"
	"spes/internal/plan"
	"spes/internal/schema"
	"spes/internal/server"
)

// Shard names one spes-serve backend. The ID is the ring identity: it must
// be stable across shard restarts (a shard that reboots on the same store
// directory under the same ID receives the same key range back).
type Shard struct {
	ID  string
	URL string // base URL, e.g. "http://127.0.0.1:8081"
}

// Config tunes the router. Catalog and at least one Shard are required;
// the zero value of every other field selects the documented default.
type Config struct {
	// Catalog is the schema the router builds plans against — only to
	// fingerprint them for routing; verification happens on the shards.
	// It must match the shards' catalog or routing keys will not line up
	// with the shards' dedupe keys (routing stays correct, locality is
	// lost).
	Catalog *schema.Catalog
	// Shards is the initial membership.
	Shards []Shard
	// VirtualNodes is the per-shard vnode count (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval is how often the background prober re-checks every
	// shard's /healthz (default 2s; < 0 disables the background loop —
	// tests drive ProbeNow themselves).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// ReprobeBase is the starting delay of the re-admission prober: when a
	// shard goes down, the router re-probes just that shard on a jittered
	// exponential backoff so a restarted shard rejoins in ~ReprobeBase
	// instead of waiting out a full ProbeInterval (default 250ms; < 0
	// disables re-admission probing — tests drive ProbeNow themselves).
	ReprobeBase time.Duration
	// ReprobeMax caps the re-admission backoff (default 5s).
	ReprobeMax time.Duration
	// ForwardTimeout bounds one forward attempt to one shard (default
	// 60s); the client's request context can only tighten it.
	ForwardTimeout time.Duration
	// MaxShedRetries is how many 503s the router rides out per shard per
	// sub-batch — honoring Retry-After — before failing over to the ring
	// successor (default 2).
	MaxShedRetries int
	// RetryAfterCap bounds how long one honored Retry-After hint may
	// stall a forward (default 5s): the hint is respected, a pathological
	// value is not allowed to wedge a batch.
	RetryAfterCap time.Duration
	// MaxBatchPairs bounds the pairs accepted in one batch request
	// (default 1024 — the spes-serve default, so any sub-batch the router
	// emits is accepted by any shard).
	MaxBatchPairs int
	// MaxBodyBytes bounds request bodies (default 1 MiB — spes-serve's own
	// default, so the router never admits a batch its shards would reject
	// as oversized when it is forwarded on).
	MaxBodyBytes int64
	// Client overrides the forwarding HTTP client (tests); default is a
	// dedicated client with keep-alives.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ReprobeBase == 0 {
		c.ReprobeBase = 250 * time.Millisecond
	}
	if c.ReprobeMax <= 0 {
		c.ReprobeMax = 5 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 60 * time.Second
	}
	if c.MaxShedRetries <= 0 {
		c.MaxShedRetries = 2
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 5 * time.Second
	}
	if c.MaxBatchPairs <= 0 {
		c.MaxBatchPairs = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// shardState is the router's live view of one backend.
type shardState struct {
	Shard
	healthy  bool   // reachable and not draining: in the ring
	draining bool   // reported "draining": out of the ring, never forwarded to
	lastErr  string // last probe/forward failure, for /healthz and stats
}

func (ss *shardState) state() string {
	switch {
	case ss.draining:
		return "draining"
	case ss.healthy:
		return "healthy"
	default:
		return "down"
	}
}

// Router is the stateless routing tier over a ring of spes-serve shards.
// "Stateless" means no verification state: everything the router holds —
// membership, health, counters — is reconstructible by booting a new
// router against the same shard list.
type Router struct {
	cfg    Config
	client *http.Client

	mu     sync.Mutex
	shards map[string]*shardState
	ring   *Ring // over healthy shards; rebuilt on every state change

	// failoverPlan is each shard's ring inheritors at full membership —
	// the pure-function-of-configuration assignment operators wire
	// spes-serve -replicate-from against, published in /healthz. Computed
	// once: configured membership never changes over a router's lifetime.
	failoverPlan map[string][]string

	reg           *server.Registry
	reqTotal      *server.CounterVec // by endpoint and status code
	forwards      *server.CounterVec // sub-batch forwards by shard
	pairsRouted   *server.CounterVec // pairs routed by shard
	shedRetries   *server.CounterVec // 503-and-wait retries by shard
	failovers     *server.CounterVec // sub-batches failed over, by the shard they left
	failoverPairs *server.CounterVec // pairs re-routed off a failed shard, by that shard
	forwardsT     *server.Counter
	retriesT      *server.Counter
	failoversT    *server.Counter
	unplacedT     *server.Counter // pairs no live shard could take (degraded verdicts)
	probeFlips    *server.Counter // membership changes observed by the prober
	reprobes      *server.Counter // re-admission probes of down shards

	draining   atomic.Bool
	baseCtx    context.Context
	cancelBase context.CancelFunc
	start      time.Time

	httpSrv     *http.Server
	probeStop   chan struct{}
	probeDone   chan struct{}
	reprobeKick chan struct{} // nudged by markDown; drained by reprobeLoop
	reprobeDone chan struct{}
}

// NewRouter builds a router over the configured shards. All shards start
// in the ring optimistically; the first probe (ProbeNow or the background
// loop) and forward failures correct the view. Misconfiguration panics —
// these are programmer errors, matching server.New.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	if cfg.Catalog == nil {
		panic("cluster: Config.Catalog is required")
	}
	if len(cfg.Shards) == 0 {
		panic("cluster: Config.Shards must name at least one shard")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		cfg:         cfg,
		client:      client,
		shards:      map[string]*shardState{},
		reg:         server.NewRegistry(),
		baseCtx:     baseCtx,
		cancelBase:  cancel,
		start:       time.Now(),
		probeStop:   make(chan struct{}),
		probeDone:   make(chan struct{}),
		reprobeKick: make(chan struct{}, 1),
		reprobeDone: make(chan struct{}),
	}
	for _, s := range cfg.Shards {
		if s.ID == "" || s.URL == "" {
			panic("cluster: every shard needs an ID and a URL")
		}
		if _, dup := rt.shards[s.ID]; dup {
			panic("cluster: duplicate shard ID " + s.ID)
		}
		rt.shards[s.ID] = &shardState{Shard: s, healthy: true}
	}
	rt.rebuildRingLocked()
	rt.failoverPlan = map[string][]string{}
	full := rt.ring // all shards start healthy, so this IS full membership
	for id := range rt.shards {
		rt.failoverPlan[id] = full.FailoverTargets(id)
	}
	rt.registerMetrics()
	rt.httpSrv = &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if cfg.ProbeInterval > 0 {
		go rt.probeLoop()
	} else {
		close(rt.probeDone)
	}
	if cfg.ReprobeBase > 0 {
		go rt.reprobeLoop()
	} else {
		close(rt.reprobeDone)
	}
	return rt
}

func (rt *Router) registerMetrics() {
	r := rt.reg
	rt.reqTotal = r.NewCounterVec("spes_router_requests_total",
		"Router HTTP requests by endpoint and status code.", "endpoint", "code")
	rt.forwards = r.NewCounterVec("spes_router_forwards_total",
		"Sub-batches forwarded, by shard.", "shard")
	rt.pairsRouted = r.NewCounterVec("spes_router_pairs_total",
		"Pairs routed, by shard (counts re-sends after failover too).", "shard")
	rt.shedRetries = r.NewCounterVec("spes_router_shed_retries_total",
		"Forwards retried after a shard 503, honoring its Retry-After.", "shard")
	rt.failovers = r.NewCounterVec("spes_router_failovers_total",
		"Sub-batches failed over to a ring successor, by the shard that failed.", "shard")
	rt.failoverPairs = r.NewCounterVec("spes_router_failover_pairs_total",
		"Pairs re-routed to ring inheritors, by the shard whose failure moved them.", "shard")
	rt.forwardsT = r.NewCounter("spes_router_forward_attempts_total",
		"Total sub-batch forward attempts across all shards.")
	rt.retriesT = r.NewCounter("spes_router_shed_retry_attempts_total",
		"Total 503-and-wait retries across all shards.")
	rt.failoversT = r.NewCounter("spes_router_failover_events_total",
		"Total failover events (a sub-batch moving to a ring successor).")
	rt.unplacedT = r.NewCounter("spes_router_unplaced_pairs_total",
		"Pairs no live shard could verify; degraded to not-proved, never fabricated.")
	rt.probeFlips = r.NewCounter("spes_router_membership_changes_total",
		"Shard ring membership changes observed (probe or forward failure).")
	rt.reprobes = r.NewCounter("spes_router_reprobes_total",
		"Re-admission probes of down shards (jittered-backoff loop).")
	r.NewGaugeFunc("spes_router_ring_size",
		"Shards currently in the ring (healthy, not draining).",
		func() float64 { return float64(rt.ringSnapshot().Size()) })
	r.NewGaugeFunc("spes_router_shards_configured",
		"Shards configured, regardless of health.",
		func() float64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			return float64(len(rt.shards))
		})
	r.NewGaugeFunc("spes_router_up_seconds",
		"Seconds since the router started.",
		func() float64 { return time.Since(rt.start).Seconds() })
}

// rebuildRingLocked recomputes the ring from healthy members. Callers hold
// rt.mu.
func (rt *Router) rebuildRingLocked() {
	ids := make([]string, 0, len(rt.shards))
	for id, ss := range rt.shards {
		if ss.healthy && !ss.draining {
			ids = append(ids, id)
		}
	}
	rt.ring = NewRing(ids, rt.cfg.VirtualNodes)
}

// ringSnapshot returns the current ring; requests route against the
// snapshot they start with, so a membership change mid-request never
// splits one batch across two views.
func (rt *Router) ringSnapshot() *Ring {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring
}

// shardURL resolves a shard ID to its base URL ("" if unknown).
func (rt *Router) shardURL(id string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if ss, ok := rt.shards[id]; ok {
		return ss.URL
	}
	return ""
}

// markDown records a transport-level forward or probe failure: the shard
// leaves the ring until a probe sees it healthy again. In-flight requests
// to it are not interrupted — if they complete, their verdicts stand.
func (rt *Router) markDown(id, reason string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ss, ok := rt.shards[id]
	if !ok || (!ss.healthy && !ss.draining) {
		if ok {
			ss.lastErr = reason
		}
		return
	}
	ss.healthy, ss.draining, ss.lastErr = false, false, reason
	rt.rebuildRingLocked()
	rt.probeFlips.Inc()
	// Wake the re-admission prober (non-blocking: a pending kick covers
	// every shard that went down since the loop last looked).
	select {
	case rt.reprobeKick <- struct{}{}:
	default:
	}
}

// downShards snapshots the shards currently out of the ring for a reason
// other than draining (a draining shard asked to leave; it comes back via
// the regular probe when it restarts and reports "ok").
func (rt *Router) downShards() []Shard {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []Shard
	for _, ss := range rt.shards {
		if !ss.healthy && !ss.draining {
			out = append(out, ss.Shard)
		}
	}
	return out
}

// reprobeLoop re-admits recovered shards: whenever something is down, it
// probes JUST the down shards on a jittered exponential backoff
// (ReprobeBase doubling to ReprobeMax), so a restarted shard rejoins the
// ring in roughly ReprobeBase rather than a full ProbeInterval, while a
// shard that stays dead costs a bounded trickle of probes. The jitter
// (±25%, drawn from the wall clock) keeps a fleet of routers from
// synchronizing their probes into a thundering herd at the reborn shard.
func (rt *Router) reprobeLoop() {
	defer close(rt.reprobeDone)
	for {
		select {
		case <-rt.probeStop:
			return
		case <-rt.reprobeKick:
		}
		backoff := rt.cfg.ReprobeBase
		for {
			down := rt.downShards()
			if len(down) == 0 {
				break
			}
			select {
			case <-rt.probeStop:
				return
			case <-time.After(jitter(backoff)):
			}
			var wg sync.WaitGroup
			for _, sh := range down {
				wg.Add(1)
				go func(sh Shard) {
					defer wg.Done()
					rt.reprobes.Inc()
					healthy, draining, reason := rt.probeOne(rt.baseCtx, sh)
					rt.setProbed(sh.ID, healthy, draining, reason)
				}(sh)
			}
			wg.Wait()
			if backoff *= 2; backoff > rt.cfg.ReprobeMax {
				backoff = rt.cfg.ReprobeMax
			}
		}
	}
}

// jitter spreads d by ±25% using the cheap wall-clock entropy this needs —
// probe scheduling wants decorrelation, not cryptography.
func jitter(d time.Duration) time.Duration {
	n := uint64(time.Now().UnixNano())
	n ^= n >> 33
	n *= 0xff51afd7ed558ccd
	n ^= n >> 33
	span := uint64(d) / 2
	if span == 0 {
		return d
	}
	return d - time.Duration(span/2) + time.Duration(n%span)
}

// setProbed applies one probe result.
func (rt *Router) setProbed(id string, healthy, draining bool, reason string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ss, ok := rt.shards[id]
	if !ok {
		return
	}
	changed := ss.healthy != healthy || ss.draining != draining
	ss.healthy, ss.draining, ss.lastErr = healthy, draining, reason
	if changed {
		rt.rebuildRingLocked()
		rt.probeFlips.Inc()
	}
}

// ProbeNow health-checks every shard once, synchronously: GET /healthz,
// 200 "ok" puts a shard in the ring, a "draining" report or any failure
// takes it out. Draining shards drain gracefully by construction: they
// stop receiving new sub-batches while their in-flight ones complete.
func (rt *Router) ProbeNow(ctx context.Context) {
	rt.mu.Lock()
	targets := make([]Shard, 0, len(rt.shards))
	for _, ss := range rt.shards {
		targets = append(targets, ss.Shard)
	}
	rt.mu.Unlock()

	var wg sync.WaitGroup
	for _, sh := range targets {
		wg.Add(1)
		go func(sh Shard) {
			defer wg.Done()
			healthy, draining, reason := rt.probeOne(ctx, sh)
			rt.setProbed(sh.ID, healthy, draining, reason)
		}(sh)
	}
	wg.Wait()
}

func (rt *Router) probeOne(ctx context.Context, sh Shard) (healthy, draining bool, reason string) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, sh.URL+"/healthz", nil)
	if err != nil {
		return false, false, err.Error()
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, false, err.Error()
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, false, "healthz: " + err.Error()
	}
	switch {
	case resp.StatusCode == http.StatusOK && body.Status == "ok":
		return true, false, ""
	case body.Status == "draining":
		return false, true, ""
	default:
		return false, false, fmt.Sprintf("healthz: status %d (%q)", resp.StatusCode, body.Status)
	}
}

func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-t.C:
			rt.ProbeNow(rt.baseCtx)
		}
	}
}

// fingerprint computes a pair's routing key: the engine's dedupe
// fingerprint (PR 1) when both plans build, so recurrences of a pair land
// on the shard already warm for it; a stable hash of the raw SQL otherwise
// (the shard will classify the failure itself — routing only needs a
// deterministic key).
func (rt *Router) fingerprint(b *plan.Builder, sql1, sql2 string) uint64 {
	q1, err1 := b.BuildSQL(sql1)
	q2, err2 := b.BuildSQL(sql2)
	if err1 == nil && err2 == nil {
		return plan.PairFingerprint(q1, q2)
	}
	return plan.HashKey(sql1 + "\x00" + sql2)
}

// Handler returns the router's HTTP handler (also useful under httptest).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/verify", rt.instrument("verify", rt.handleVerify))
	mux.HandleFunc("/v1/verify/batch", rt.instrument("batch", rt.handleBatch))
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/v1/cluster/stats", rt.handleClusterStats)
	return mux
}

// Serve accepts connections on l until Shutdown.
func (rt *Router) Serve(l net.Listener) error {
	err := rt.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves.
func (rt *Router) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(l)
}

// Shutdown drains the router: /healthz flips to draining, the prober
// stops, in-flight requests get until ctx expires, then remaining
// forwards are cancelled (the shards finish or abandon that work under
// their own drain rules; the router just stops waiting).
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.draining.Store(true)
	select {
	case <-rt.probeStop:
	default:
		close(rt.probeStop)
	}
	done := make(chan error, 1)
	go func() { done <- rt.httpSrv.Shutdown(context.Background()) }()
	var err error
	select {
	case err = <-done:
		rt.cancelBase()
	case <-ctx.Done():
		rt.cancelBase()
		err = <-done
	}
	<-rt.probeDone
	<-rt.reprobeDone
	rt.client.CloseIdleConnections()
	return err
}

func (rt *Router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			rt.reqTotal.Inc(endpoint, "405")
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
			return
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			// A panic in the routing tier answers this request with a 500
			// and keeps routing everyone else — same last-resort isolation
			// as the shards' handler layer.
			if p := recover(); p != nil {
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal_error",
						"panic recovered; this request failed, the router did not")
				}
			}
			rt.reqTotal.Inc(endpoint, strconv.Itoa(sw.code))
		}()
		r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
		h(sw, r)
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	type shardView struct {
		ID    string `json:"id"`
		URL   string `json:"url"`
		State string `json:"state"`
		Error string `json:"error,omitempty"`
		// FailoverTo is who inherits this shard's key range if it dies,
		// largest share first — the assignment to point the shards'
		// -replicate-from at so inheritors are warm before they're needed.
		FailoverTo []string `json:"failover_to,omitempty"`
	}
	views := make([]shardView, 0, len(rt.shards))
	for _, ss := range rt.shards {
		views = append(views, shardView{
			ID: ss.ID, URL: ss.URL, State: ss.state(), Error: ss.lastErr,
			FailoverTo: rt.failoverPlan[ss.ID],
		})
	}
	ringSize := rt.ring.Size()
	rt.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })

	status, code := "ok", http.StatusOK
	switch {
	case rt.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case ringSize == 0:
		// A router with an empty ring is alive but useless; report it as
		// unhealthy so a load balancer in front of several routers stops
		// sending traffic here.
		status, code = "no_shards", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"uptime_s":  time.Since(rt.start).Seconds(),
		"ring_size": ringSize,
		"shards":    views,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.Render(w)
}

// ClusterStats is the body of GET /v1/cluster/stats: every shard's engine
// snapshot plus the cluster-wide sums — the fleet analog of one engine's
// Stats.
type ClusterStats struct {
	RingSize int                `json:"ring_size"`
	Shards   []ShardStats       `json:"shards"`
	Totals   ShardStatsTotals   `json:"totals"`
	Router   RouterStatCounters `json:"router"`
}

// ShardStats is one shard's contribution.
type ShardStats struct {
	ID     string                `json:"id"`
	URL    string                `json:"url"`
	State  string                `json:"state"`
	Error  string                `json:"error,omitempty"`
	Uptime float64               `json:"uptime_s,omitempty"`
	Engine *engine.StatsSnapshot `json:"engine,omitempty"`
}

// ShardStatsTotals sums the reachable shards' engine counters.
type ShardStatsTotals struct {
	Shards            int     `json:"shards_reporting"`
	Pairs             int64   `json:"pairs"`
	Equivalent        int64   `json:"equivalent"`
	NotProved         int64   `json:"not_proved"`
	Unsupported       int64   `json:"unsupported"`
	Refuted           int64   `json:"refuted"`
	SolverQueries     int64   `json:"solver_queries"`
	ObligationHits    int64   `json:"obligation_hits"`
	ObligationMisses  int64   `json:"obligation_misses"`
	ObligationHitRate float64 `json:"obligation_hit_rate"`
	StoreHits         int64   `json:"store_hits"`
	TermNodes         int64   `json:"term_nodes"`
}

// RouterStatCounters is the router's own traffic view.
type RouterStatCounters struct {
	ForwardAttempts int64 `json:"forward_attempts"`
	ShedRetries     int64 `json:"shed_retries"`
	Failovers       int64 `json:"failovers"`
	UnplacedPairs   int64 `json:"unplaced_pairs"`
}

func (rt *Router) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	targets := make([]*shardState, 0, len(rt.shards))
	for _, ss := range rt.shards {
		targets = append(targets, &shardState{Shard: ss.Shard, healthy: ss.healthy, draining: ss.draining, lastErr: ss.lastErr})
	}
	ringSize := rt.ring.Size()
	rt.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })

	out := ClusterStats{RingSize: ringSize}
	var mu sync.Mutex
	var wg sync.WaitGroup
	out.Shards = make([]ShardStats, len(targets))
	for i, ss := range targets {
		out.Shards[i] = ShardStats{ID: ss.ID, URL: ss.URL, State: ss.state(), Error: ss.lastErr}
		wg.Add(1)
		go func(i int, ss *shardState) {
			defer wg.Done()
			snap, uptime, err := rt.fetchShardStats(r.Context(), ss.Shard)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if out.Shards[i].Error == "" {
					out.Shards[i].Error = err.Error()
				}
				return
			}
			out.Shards[i].Engine, out.Shards[i].Uptime = snap, uptime
			out.Totals.Shards++
			out.Totals.Pairs += snap.Pairs
			out.Totals.Equivalent += snap.Equivalent
			out.Totals.NotProved += snap.NotProved
			out.Totals.Unsupported += snap.Unsupported
			out.Totals.Refuted += snap.Refuted
			out.Totals.SolverQueries += snap.SolverQueries
			out.Totals.ObligationHits += snap.ObligationHits
			out.Totals.ObligationMisses += snap.ObligationMisses
			out.Totals.StoreHits += snap.StoreHits
			out.Totals.TermNodes += snap.TermNodes
		}(i, ss)
	}
	wg.Wait()
	if t := out.Totals.ObligationHits + out.Totals.ObligationMisses; t > 0 {
		out.Totals.ObligationHitRate = float64(out.Totals.ObligationHits) / float64(t)
	}
	out.Router = RouterStatCounters{
		ForwardAttempts: rt.forwardsT.Value(),
		ShedRetries:     rt.retriesT.Value(),
		Failovers:       rt.failoversT.Value(),
		UnplacedPairs:   rt.unplacedT.Value(),
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) fetchShardStats(ctx context.Context, sh Shard) (*engine.StatsSnapshot, float64, error) {
	sctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, sh.URL+"/v1/stats", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	var body server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, 0, err
	}
	return &body.Engine, body.UptimeS, nil
}

// writeJSON / writeError / statusWriter mirror the server package's wire
// discipline so router and shard responses are indistinguishable to
// clients.
func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, server.ErrorResponse{Error: server.ErrorBody{Code: code, Message: message}})
}

type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}
