// Package cluster is the multi-node verification tier: a stateless HTTP
// router that splits incoming batches by plan fingerprint, consistent-hashes
// each pair onto a ring of spes-serve shards, forwards sub-batches
// concurrently, and reassembles verdicts in request order.
//
// Why fingerprint routing: a pair's verdict depends only on its own plans,
// so the workload partitions freely — but WHERE a pair lands decides whether
// the shard's warm state helps. The plan fingerprint is the engine's dedupe
// key (PR 1), so recurrences of a hot pair, and the obligations they share,
// always land on the same shard: each shard's obligation cache, term DAG,
// and lemma pool stay coherent on its slice of the workload instead of
// diluting hit rates N ways.
//
// Why failover is sound: verdicts are deterministic functions of the two
// plans (the whole repo's parity suites pin this), so re-verifying a pair on
// the ring successor after its owner dies returns the same answer. The
// router can therefore retry and fail over freely; the only thing it can
// never do is manufacture a verdict itself.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-shard vnode count. 128 points per shard
// keeps the expected per-shard load imbalance within ~10% relative (arc
// lengths concentrate as 1/sqrt(V)) while the ring stays small enough to
// rebuild on every membership change (rebuilds are O(N·V·log(N·V)) for N
// shards).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over shard IDs. Immutability is
// the concurrency story: the router swaps whole rings on membership change,
// and every request routes against the snapshot it started with.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by (hash, shard)
	shards []string    // member IDs, sorted
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds a ring over the given shard IDs with vnodes virtual nodes
// per shard (<= 0 selects DefaultVirtualNodes). The ring is a pure function
// of the ID set: the same members hash to the same points in every process
// and across restarts, so a rebooted router routes exactly like its
// predecessor — a warm shard keeps receiving the slice it is warm for.
func NewRing(shardIDs []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes}
	seen := map[string]bool{}
	for _, id := range shardIDs {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		r.shards = append(r.shards, id)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(id, v), shard: id})
		}
	}
	sort.Strings(r.shards)
	// Ties on hash (astronomically rare, but the ring must be a total
	// order) break by shard ID so Lookup stays deterministic.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// vnodeHash places one virtual node: FNV-64a over "id\x00#v", then a
// splitmix64 finalizer. The finalizer matters — raw FNV over short,
// near-identical strings leaves enough structure in the high bits to skew
// arc lengths badly (observed 36% of keys on one of four shards at 64
// vnodes). Everything here is seedless and map-free, so placement is
// stable across processes and restarts: ring position is durable state,
// not process state.
func vnodeHash(id string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{0})
	fmt.Fprintf(h, "%d", v)
	x := h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Size returns the number of member shards.
func (r *Ring) Size() int { return len(r.shards) }

// Shards returns the member IDs in sorted order (shared slice; do not
// mutate).
func (r *Ring) Shards() []string { return r.shards }

// Lookup returns the shard owning the fingerprint: the first vnode at or
// after fp on the ring, wrapping at the top. Empty ring returns "".
func (r *Ring) Lookup(fp uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= fp })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Successors returns up to n distinct shards in ring order starting at the
// fingerprint's owner — the failover sequence for a pair: if the owner
// dies, its pairs re-verify on the next shard in this list.
func (r *Ring) Successors(fp uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= fp })
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// FailoverTargets reports which shards inherit id's key range if it
// leaves the ring, ordered by how much of that range each one takes
// (largest share first). With vnodes a dead shard's arcs scatter across
// MANY inheritors, not one "successor" — this is the list a warm-standby
// scheme must replicate toward, and the assignment is a pure function of
// membership, so every router and shard computes the same answer.
func (r *Ring) FailoverTargets(id string) []string {
	if len(r.points) == 0 {
		return nil
	}
	// Each of id's vnode arcs is inherited by the next point on the ring
	// that belongs to someone else; weight that inheritor by the arc length
	// it absorbs.
	share := map[string]uint64{}
	for i, p := range r.points {
		if p.shard != id {
			continue
		}
		// Arc length owned by this vnode: distance from the previous point
		// (wrapping) to this one.
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		arc := p.hash - prev // uint64 wraparound handles the top-of-ring arc
		for k := 1; k < len(r.points); k++ {
			q := r.points[(i+k)%len(r.points)]
			if q.shard != id {
				share[q.shard] += arc
				break
			}
		}
	}
	out := make([]string, 0, len(share))
	for s := range share {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if share[out[i]] != share[out[j]] {
			return share[out[i]] > share[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Without returns a ring over the members minus the excluded shards —
// how a request-scoped failover re-routes without waiting for the global
// membership view to catch up.
func (r *Ring) Without(excluded map[string]bool) *Ring {
	if len(excluded) == 0 {
		return r
	}
	keep := make([]string, 0, len(r.shards))
	for _, id := range r.shards {
		if !excluded[id] {
			keep = append(keep, id)
		}
	}
	return NewRing(keep, r.vnodes)
}
