package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"spes/internal/engine"
	"spes/internal/fault"
	"spes/internal/plan"
	"spes/internal/server"
)

// This file is the router's data path: split a batch by plan fingerprint,
// forward each shard's sub-batch concurrently, ride out shard 503s by
// honoring Retry-After, fail dead shards' pairs over to the ring
// successor, and reassemble verdicts in request order.
//
// Failure taxonomy, per sub-batch forward:
//
//   - 200: verdicts placed at the pairs' original indices;
//   - 503: the shard is alive but shedding — wait out its Retry-After
//     (capped) and retry the SAME shard, bounded by MaxShedRetries, then
//     fail over WITHOUT marking the shard down (admission pressure is not
//     death);
//   - transport error / unexpected status: the shard is presumed dead —
//     mark it down (the prober re-adds it when it recovers) and fail the
//     sub-batch over to the ring successors of its pairs;
//   - ring exhausted: the leftover pairs degrade to not-proved with a
//     cluster_unavailable reason. Degraded means degraded: the router can
//     lose verdicts to total shard loss but can never invent one.

// errInjected marks transport failures manufactured by the router-forward
// fault site, so tests can tell them from real ones if they ever need to.
var errInjected = errors.New("cluster: injected forward failure")

// injectForward evaluates the router-forward fault site, converting both
// fault kinds into the transport-failure error path (a panic here must
// behave exactly like a connection dropping mid-forward: recovered,
// failed over, never propagated to the client).
func injectForward() (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", errInjected, p)
		}
	}()
	if fault.Inject(fault.RouterForward) == fault.Cancel {
		return errInjected
	}
	return nil
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return
	}
	// Validation mirrors the shards' handleBatch so a client cannot tell a
	// router from a single shard by its 400s.
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "pairs must be non-empty")
		return
	}
	if len(req.Pairs) > rt.cfg.MaxBatchPairs {
		writeError(w, http.StatusBadRequest, "batch_too_large",
			fmt.Sprintf("batch of %d pairs exceeds the limit of %d", len(req.Pairs), rt.cfg.MaxBatchPairs))
		return
	}
	for i, p := range req.Pairs {
		if p.SQL1 == "" || p.SQL2 == "" {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("pair %d: both sql1 and sql2 are required", i))
			return
		}
	}

	start := time.Now()
	fps := make([]uint64, len(req.Pairs))
	b := plan.NewBuilder(rt.cfg.Catalog)
	for i, p := range req.Pairs {
		fps[i] = rt.fingerprint(b, p.SQL1, p.SQL2)
	}

	ctx, cancel := rt.requestCtx(r.Context())
	defer cancel()
	results, agg, unplaced := rt.routeBatch(ctx, req, fps)
	if unplaced == len(req.Pairs) {
		// Nothing was verified anywhere: the cluster is unavailable, and
		// saying so beats returning a batch of fabricated-looking
		// degradations.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no_shards",
			"no shard could take the batch; retry later")
		return
	}

	wall := time.Since(start)
	resp := server.BatchResponse{Results: results, Stats: agg}
	resp.Stats.Pairs = len(results)
	resp.Stats.WallMS = float64(wall) / float64(time.Millisecond)
	if wall > 0 {
		resp.Stats.PairsPerSec = float64(len(results)) / wall.Seconds()
	}
	writeJSON(w, http.StatusOK, resp)
}

// requestCtx bounds the whole routed request by the router's lifetime and
// a generous multiple of the per-forward timeout, so retry/failover chains
// cannot outlive the client's patience unboundedly.
func (rt *Router) requestCtx(reqCtx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel1 := context.WithTimeout(rt.baseCtx, 4*rt.cfg.ForwardTimeout)
	// Also stop when the client hangs up: unlike a shard's coalesced
	// leader, the router has no waiters to serve — forwarding for a gone
	// client is pure waste. The shards keep their own caches warm either
	// way.
	ctx, cancel2 := mergeCancel(ctx, reqCtx)
	return ctx, func() { cancel2(); cancel1() }
}

// mergeCancel derives a context from primary that is also cancelled when
// secondary is.
func mergeCancel(primary, secondary context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(primary)
	stop := make(chan struct{})
	go func() {
		select {
		case <-secondary.Done():
			cancel()
		case <-stop:
		}
	}()
	return ctx, func() { close(stop); cancel() }
}

// routeBatch places every pair on a shard (re-routing around failures) and
// returns verdicts in request order, the summed sub-batch stats, and how
// many pairs no live shard could take.
func (rt *Router) routeBatch(ctx context.Context, req server.BatchRequest, fps []uint64) ([]server.VerifyResponse, server.BatchStatsJSON, int) {
	results := make([]server.VerifyResponse, len(req.Pairs))
	placed := make([]bool, len(req.Pairs))
	var agg server.BatchStatsJSON

	pending := make([]int, len(req.Pairs))
	for i := range pending {
		pending[i] = i
	}
	// excluded is request-scoped: a shard that shed this batch stays out
	// of THIS request's re-routes but keeps serving everyone else.
	excluded := map[string]bool{}

	// Each iteration excludes at least one shard, so the loop is bounded
	// by the membership size; the explicit hop cap is belt and braces.
	for hop := 0; len(pending) > 0 && hop <= len(rt.cfg.Shards); hop++ {
		ring := rt.ringSnapshot().Without(excluded)
		if ring.Size() == 0 {
			break
		}
		groups := map[string][]int{}
		for _, i := range pending {
			shard := ring.Lookup(fps[i])
			groups[shard] = append(groups[shard], i)
		}
		order := make([]string, 0, len(groups))
		for shard := range groups {
			order = append(order, shard)
		}
		sort.Strings(order)

		type outcome struct {
			shard string
			idx   []int
			resp  *server.BatchResponse
			err   error
		}
		outcomes := make([]outcome, len(order))
		var wg sync.WaitGroup
		for gi, shard := range order {
			idx := groups[shard]
			sub := server.BatchRequest{
				Pairs:     make([]server.BatchPairJSON, len(idx)),
				TimeoutMS: req.TimeoutMS,
				Workers:   req.Workers,
			}
			for k, i := range idx {
				sub.Pairs[k] = req.Pairs[i]
			}
			wg.Add(1)
			go func(gi int, shard string, sub server.BatchRequest, idx []int) {
				defer wg.Done()
				resp, err := rt.forwardBatch(ctx, shard, sub)
				outcomes[gi] = outcome{shard: shard, idx: idx, resp: resp, err: err}
			}(gi, shard, sub, idx)
		}
		wg.Wait()

		pending = pending[:0]
		for _, oc := range outcomes {
			if oc.err == nil && len(oc.resp.Results) != len(oc.idx) {
				oc.err = fmt.Errorf("cluster: shard %s returned %d results for %d pairs", oc.shard, len(oc.resp.Results), len(oc.idx))
			}
			if oc.err != nil {
				// Fail the whole sub-batch over: re-verification on the
				// successor is sound because verdicts are deterministic.
				rt.failovers.Inc(oc.shard)
				rt.failoverPairs.With(oc.shard).Add(int64(len(oc.idx)))
				rt.failoversT.Inc()
				excluded[oc.shard] = true
				pending = append(pending, oc.idx...)
				continue
			}
			for k, i := range oc.idx {
				results[i] = oc.resp.Results[k]
				placed[i] = true
			}
			addBatchStats(&agg, oc.resp.Stats)
		}
	}

	unplaced := 0
	for i := range results {
		if !placed[i] {
			unplaced++
			rt.unplacedT.Inc()
			results[i] = server.VerifyResponse{
				ID:      req.Pairs[i].ID,
				Verdict: engine.NotProved.String(),
				Reason:  "cluster_unavailable: no live shard could verify this pair",
			}
		}
	}
	return results, agg, unplaced
}

// addBatchStats folds one shard's sub-batch stats into the aggregate.
// Pairs/WallMS/PairsPerSec are owned by the router (the sums would be
// wrong: sub-batches overlap in time).
func addBatchStats(agg *server.BatchStatsJSON, st server.BatchStatsJSON) {
	if st.Workers > agg.Workers {
		agg.Workers = st.Workers
	}
	agg.Equivalent += st.Equivalent
	agg.NotProved += st.NotProved
	agg.Unsupported += st.Unsupported
	agg.Refuted += st.Refuted
	agg.Deduped += st.Deduped
	agg.Timeouts += st.Timeouts
	agg.Cancelled += st.Cancelled
	agg.Panics += st.Panics
	agg.WatchdogAborts += st.WatchdogAborts
	agg.ObligationHits += st.ObligationHits
	agg.ObligationMisses += st.ObligationMisses
}

// forwardBatch sends one sub-batch to one shard, riding out 503s by
// honoring the shard's Retry-After (capped) up to MaxShedRetries times.
// Any other failure is returned to routeBatch for failover.
func (rt *Router) forwardBatch(ctx context.Context, shardID string, sub server.BatchRequest) (*server.BatchResponse, error) {
	url := rt.shardURL(shardID)
	if url == "" {
		return nil, fmt.Errorf("cluster: unknown shard %q", shardID)
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	for retry := 0; ; retry++ {
		rt.forwards.Inc(shardID)
		rt.forwardsT.Inc()
		rt.pairsRouted.With(shardID).Add(int64(len(sub.Pairs)))
		resp, err := rt.post(ctx, url+"/v1/verify/batch", body)
		if err != nil {
			rt.markDown(shardID, err.Error())
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var br server.BatchResponse
			err := json.NewDecoder(resp.Body).Decode(&br)
			resp.Body.Close()
			if err != nil {
				rt.markDown(shardID, "bad batch response: "+err.Error())
				return nil, fmt.Errorf("cluster: shard %s: decoding batch response: %w", shardID, err)
			}
			return &br, nil
		case http.StatusServiceUnavailable:
			wait := retryAfterWait(resp, rt.cfg.RetryAfterCap)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if retry >= rt.cfg.MaxShedRetries {
				// Shedding is not death: fail over without touching the
				// shard's membership.
				return nil, fmt.Errorf("cluster: shard %s still shedding after %d retries", shardID, retry)
			}
			rt.shedRetries.Inc(shardID)
			rt.retriesT.Inc()
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("cluster: shard %s: unexpected status %d", shardID, resp.StatusCode)
		}
	}
}

// post is the single forward primitive: fault site, per-attempt timeout,
// one POST.
func (rt *Router) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	if err := injectForward(); err != nil {
		return nil, err
	}
	actx, cancel := context.WithTimeout(ctx, rt.cfg.ForwardTimeout)
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The attempt context must outlive the response body read; tie its
	// cancellation to the body's lifetime.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// retryAfterWait reads the shard's Retry-After hint. The actual value is
// honored — the shard computed it, the router respects it — up to cap,
// which exists only so a corrupt or hostile hint cannot wedge a batch.
// With no hint, a short fixed wait keeps the retry from hammering.
func retryAfterWait(resp *http.Response, cap time.Duration) time.Duration {
	d := 50 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			d = time.Duration(n) * time.Second
		}
	}
	if d > cap {
		d = cap
	}
	return d
}

func (rt *Router) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req server.VerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return
	}
	if req.SQL1 == "" || req.SQL2 == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "both sql1 and sql2 are required")
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal_error", err.Error())
		return
	}
	fp := rt.fingerprint(plan.NewBuilder(rt.cfg.Catalog), req.SQL1, req.SQL2)

	ctx, cancel := rt.requestCtx(r.Context())
	defer cancel()

	ring := rt.ringSnapshot()
	// The owner first, then its ring successors: the failover order a
	// mid-request shard death walks.
	for _, shardID := range ring.Successors(fp, ring.Size()) {
		url := rt.shardURL(shardID)
		if url == "" {
			continue
		}
		status, hdr, respBody, err := rt.forwardVerify(ctx, shardID, url, body)
		if err != nil {
			rt.failovers.Inc(shardID)
			rt.failoverPairs.With(shardID).Add(1)
			rt.failoversT.Inc()
			continue
		}
		// Relay the shard's definitive answer byte for byte: the router
		// adds routing, not opinions.
		if ct := hdr.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "no_shards",
		"no shard could take the request; retry later")
}

// forwardVerify sends one /v1/verify to one shard with the same 503
// discipline as forwardBatch, returning the shard's definitive response
// (any status < 500) for verbatim relay.
func (rt *Router) forwardVerify(ctx context.Context, shardID, url string, body []byte) (int, http.Header, []byte, error) {
	for retry := 0; ; retry++ {
		rt.forwards.Inc(shardID)
		rt.forwardsT.Inc()
		rt.pairsRouted.Inc(shardID)
		resp, err := rt.post(ctx, url+"/v1/verify", body)
		if err != nil {
			rt.markDown(shardID, err.Error())
			return 0, nil, nil, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable && retry < rt.cfg.MaxShedRetries {
			wait := retryAfterWait(resp, rt.cfg.RetryAfterCap)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rt.shedRetries.Inc(shardID)
			rt.retriesT.Inc()
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return 0, nil, nil, ctx.Err()
			}
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			rt.markDown(shardID, err.Error())
			return 0, nil, nil, err
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			return 0, nil, nil, fmt.Errorf("cluster: shard %s: status %d", shardID, resp.StatusCode)
		}
		return resp.StatusCode, resp.Header, respBody, nil
	}
}
