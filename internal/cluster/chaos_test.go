package cluster

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"spes/internal/corpus"
	"spes/internal/fault"
	"spes/internal/server"
)

// settleGoroutines waits for the goroutine count to return to base —
// proving no forward, prober, or mergeCancel goroutine was stranded.
func settleGoroutines(t *testing.T, base int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		runtime.GC()
		http.DefaultClient.CloseIdleConnections()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, base, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill hard-stops a shard: the listener closes (no new connections) and
// every live connection is severed — the closest httptest gets to a
// SIGKILL'd process.
func (sh *testShard) kill() {
	sh.ts.Listener.Close()
	sh.ts.CloseClientConnections()
}

// TestChaosShardKillMidBatch is the cluster half of the chaos contract:
// a shard dies — hard, mid-batch, connections severed — and the batch
// still completes with verdicts byte-identical to a single-node run,
// because the router fails the dead shard's pairs over to the ring
// successor and re-verification is deterministic. Run under -race in CI.
func TestChaosShardKillMidBatch(t *testing.T) {
	base := runtime.NumGoroutine()

	single := newTestShard(t, "solo", server.Config{})
	a := newTestShard(t, "a", server.Config{})
	b := newTestShard(t, "b", server.Config{})
	rt := NewRouter(Config{
		Catalog:       corpus.Catalog(),
		Shards:        []Shard{{ID: "a", URL: a.ts.URL}, {ID: "b", URL: b.ts.URL}},
		ProbeInterval: -1,
		RetryAfterCap: 20 * time.Millisecond,
	})
	h := rt.Handler()

	req := clusterBatch(24)
	ref := decode[server.BatchResponse](t, postJSON(t, single.srv.Handler(), "/v1/verify/batch", req))

	// Round 1: kill b while the batch is in flight. With GOMAXPROCS=1 the
	// kill may land before, during, or after b's sub-batch — every
	// interleaving must end in a complete, correct batch.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(2 * time.Millisecond)
		b.kill()
	}()
	w := postJSON(t, h, "/v1/verify/batch", req)
	<-killDone
	if w.Code != 200 {
		t.Fatalf("batch during shard kill: %d %s", w.Code, w.Body.String())
	}
	checkParity(t, ref, decode[server.BatchResponse](t, w), false)

	// Round 2: b is definitely dead now. This batch must fail over and
	// still match single-node exactly.
	w = postJSON(t, h, "/v1/verify/batch", req)
	if w.Code != 200 {
		t.Fatalf("batch after shard kill: %d %s", w.Code, w.Body.String())
	}
	got := decode[server.BatchResponse](t, w)
	checkParity(t, ref, got, false)
	for i, r := range got.Results {
		if r.Shard != "a" {
			t.Fatalf("result %d on %q after b died", i, r.Shard)
		}
	}
	if rt.failoversT.Value() == 0 {
		t.Fatal("no failover recorded across a shard kill")
	}
	if rt.unplacedT.Value() != 0 {
		t.Fatalf("%d pairs degraded with a live shard available", rt.unplacedT.Value())
	}

	// Wind down and prove nothing was stranded: no forward goroutine
	// waiting on the dead shard, no mergeCancel watcher, no prober.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("router shutdown: %v", err)
	}
	settleGoroutines(t, base+3, 5*time.Second) // +3: the t.Cleanup-owned shard stacks are still up
}

// TestChaosRouterForwardSite arms the router-forward fault site — panics,
// delays, and cancels injected into the forwarding path itself — under
// concurrent batches, with probes running between rounds so spuriously
// down-marked shards rejoin. The soundness contract under forward chaos:
// the router may LOSE verdicts (degrade to not-proved when the ring looks
// empty) but may never CHANGE one — every non-degraded verdict must equal
// the single-node verdict, and the protocol stays 200/503.
func TestChaosRouterForwardSite(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed chaos run")
	}
	base := runtime.NumGoroutine()
	single := newTestShard(t, "solo", server.Config{})
	a := newTestShard(t, "a", server.Config{})
	b := newTestShard(t, "b", server.Config{})
	rt := NewRouter(Config{
		Catalog:       corpus.Catalog(),
		Shards:        []Shard{{ID: "a", URL: a.ts.URL}, {ID: "b", URL: b.ts.URL}},
		ProbeInterval: -1,
		RetryAfterCap: 20 * time.Millisecond,
	})
	h := rt.Handler()

	req := clusterBatch(16)
	ref := decode[server.BatchResponse](t, postJSON(t, single.srv.Handler(), "/v1/verify/batch", req))

	var fired uint64
	for seed := uint64(1); seed <= 4; seed++ {
		if err := fault.Enable(fault.Config{
			Seed:     seed,
			PerMille: 250,
			Delay:    time.Millisecond,
			Sites:    []fault.Site{fault.RouterForward},
		}); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			w := postJSON(t, h, "/v1/verify/batch", req)
			switch {
			case w.Code == 200:
				checkParity(t, ref, decode[server.BatchResponse](t, w), true)
			case w.Code == http.StatusServiceUnavailable:
				// Injected failures downed every shard from the router's
				// point of view: refusing the batch is the honest answer.
			default:
				t.Fatalf("seed %d round %d: status %d: %s — forward faults must never corrupt the protocol",
					seed, round, w.Code, w.Body.String())
			}
			// The prober heals the spurious deaths: both shards are in fact
			// alive the whole time.
			rt.ProbeNow(context.Background())
		}
		fired += fault.Fired(fault.RouterForward)
		fault.Disable()
	}
	if fired == 0 {
		t.Fatal("router-forward site never fired; the chaos run was a no-op")
	}
	if rt.ringSnapshot().Size() != 2 {
		t.Fatalf("ring size %d after final probe; live shards must be restored", rt.ringSnapshot().Size())
	}

	// Single-verify path under the same faults: answers relay a real shard
	// verdict or refuse with 503 — never invent.
	if err := fault.Enable(fault.Config{
		Seed: 9, PerMille: 250, Sites: []fault.Site{fault.RouterForward},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w := postJSON(t, h, "/v1/verify", server.VerifyRequest{SQL1: eqSQL1, SQL2: eqSQL2})
		switch w.Code {
		case 200:
			resp := decode[server.VerifyResponse](t, w)
			if resp.Verdict != "equivalent" {
				t.Fatalf("verify %d: verdict %q under forward faults; relayed answers must be the shard's", i, resp.Verdict)
			}
		case http.StatusServiceUnavailable:
		default:
			t.Fatalf("verify %d: status %d: %s", i, w.Code, w.Body.String())
		}
		rt.ProbeNow(context.Background())
	}
	fault.Disable()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("router shutdown: %v", err)
	}
	settleGoroutines(t, base+3, 5*time.Second)
}

// checkParity asserts the routed batch matches the single-node reference:
// same length, request order preserved, and verdicts identical — except,
// when degradedOK, a verdict may weaken to the explicit
// cluster_unavailable degradation (never strengthen, never change to a
// different definite answer).
func checkParity(t *testing.T, ref, got server.BatchResponse, degradedOK bool) {
	t.Helper()
	if len(got.Results) != len(ref.Results) {
		t.Fatalf("routed batch returned %d results, single-node %d", len(got.Results), len(ref.Results))
	}
	for i := range got.Results {
		g, r := got.Results[i], ref.Results[i]
		if g.ID != r.ID {
			t.Fatalf("result %d: ID %q out of order (want %q)", i, g.ID, r.ID)
		}
		if g.Verdict == r.Verdict {
			continue
		}
		if degradedOK && g.Verdict == "not-proved" && g.Reason != "" {
			continue // honest degradation: verdict lost, not changed
		}
		t.Fatalf("result %d (%s): cluster verdict %q != single-node %q (reason %q)",
			i, g.ID, g.Verdict, r.Verdict, g.Reason)
	}
}
