package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingDeterminism pins the property a restarted router depends on: the
// ring is a pure function of the member ID SET — same members, any
// insertion order, any process — so routing survives router reboots and
// every router replica agrees on placement.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"s1", "s2", "s3", "s4"}, 128)
	b := NewRing([]string{"s4", "s2", "s1", "s3", "s1"}, 128) // shuffled, with a duplicate
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		fp := r.Uint64()
		if got, want := b.Lookup(fp), a.Lookup(fp); got != want {
			t.Fatalf("fp %#x: ring built in different order disagrees: %q vs %q", fp, got, want)
		}
	}
	if a.Size() != 4 || b.Size() != 4 {
		t.Fatalf("sizes: %d, %d (duplicate IDs must collapse)", a.Size(), b.Size())
	}
}

// TestRingRebalanceInvariant is the consistent-hashing contract: adding or
// removing one of N shards moves about K/N of K keys — and, critically,
// every key that moves on an add moves TO the new shard, and every key
// that moves on a remove moves FROM the removed shard. Keys owned by
// untouched shards never reshuffle among them, which is what keeps N-1
// warm caches warm through a membership change.
func TestRingRebalanceInvariant(t *testing.T) {
	const keys = 20000
	r := rand.New(rand.NewSource(11))
	fps := make([]uint64, keys)
	for i := range fps {
		fps[i] = r.Uint64()
	}
	members := []string{"s1", "s2", "s3", "s4"}
	base := NewRing(members, 128)

	t.Run("add", func(t *testing.T) {
		grown := NewRing(append([]string{"s5"}, members...), 128)
		moved := 0
		for _, fp := range fps {
			before, after := base.Lookup(fp), grown.Lookup(fp)
			if before == after {
				continue
			}
			moved++
			if after != "s5" {
				t.Fatalf("fp %#x moved %q -> %q: an add may only move keys to the new shard", fp, before, after)
			}
		}
		assertMovedFraction(t, moved, keys, len(members)+1)
	})

	t.Run("remove", func(t *testing.T) {
		shrunk := NewRing(members[:3], 128) // drop s4
		moved := 0
		for _, fp := range fps {
			before, after := base.Lookup(fp), shrunk.Lookup(fp)
			if before == after {
				continue
			}
			moved++
			if before != "s4" {
				t.Fatalf("fp %#x moved %q -> %q: a remove may only move the removed shard's keys", fp, before, after)
			}
		}
		assertMovedFraction(t, moved, keys, len(members))
	})

	t.Run("without-equals-rebuild", func(t *testing.T) {
		viaWithout := base.Without(map[string]bool{"s4": true})
		rebuilt := NewRing(members[:3], 128)
		for _, fp := range fps[:2000] {
			if viaWithout.Lookup(fp) != rebuilt.Lookup(fp) {
				t.Fatalf("Without and rebuild disagree at %#x", fp)
			}
		}
	})
}

// assertMovedFraction checks moved ≈ keys/n: at least half the ideal (the
// change really rebalanced) and at most double it (nowhere near a full
// reshuffle; with 128 mixed vnodes the spread is comfortably inside 2x).
func assertMovedFraction(t *testing.T, moved, keys, n int) {
	t.Helper()
	ideal := keys / n
	if moved < ideal/2 || moved > ideal*2 {
		t.Fatalf("%d of %d keys moved; want ~K/N = %d (accepted band [%d, %d])",
			moved, keys, ideal, ideal/2, ideal*2)
	}
	t.Logf("moved %d/%d keys (ideal K/N = %d)", moved, keys, ideal)
}

// TestRingEdgeCases covers the degenerate memberships the router meets
// during total outage and single-shard operation.
func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 128)
	if empty.Size() != 0 || empty.Lookup(42) != "" || empty.Successors(42, 3) != nil {
		t.Fatalf("empty ring must answer nothing: size=%d lookup=%q succ=%v",
			empty.Size(), empty.Lookup(42), empty.Successors(42, 3))
	}

	single := NewRing([]string{"only"}, 128)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if got := single.Lookup(r.Uint64()); got != "only" {
			t.Fatalf("single-shard ring routed to %q", got)
		}
	}
	if succ := single.Successors(7, 5); len(succ) != 1 || succ[0] != "only" {
		t.Fatalf("single-shard successors: %v", succ)
	}

	if got := single.Without(map[string]bool{"only": true}); got.Size() != 0 {
		t.Fatalf("Without(last member) size = %d", got.Size())
	}
}

// TestRingSuccessorsDistinct: the failover order visits every shard
// exactly once, starting at the owner.
func TestRingSuccessorsDistinct(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	ring := NewRing(members, 32)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		fp := r.Uint64()
		succ := ring.Successors(fp, len(members))
		if len(succ) != len(members) {
			t.Fatalf("successors %v: want all %d shards", succ, len(members))
		}
		if succ[0] != ring.Lookup(fp) {
			t.Fatalf("successors start at %q, owner is %q", succ[0], ring.Lookup(fp))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate %q in successors %v", s, succ)
			}
			seen[s] = true
		}
	}
}

// TestRingBalance: with vnodes on, per-shard load stays within a sane
// factor of ideal (the reason vnodes exist).
func TestRingBalance(t *testing.T) {
	members := []string{"s1", "s2", "s3", "s4"}
	ring := NewRing(members, DefaultVirtualNodes)
	counts := map[string]int{}
	r := rand.New(rand.NewSource(13))
	const keys = 40000
	for i := 0; i < keys; i++ {
		counts[ring.Lookup(r.Uint64())]++
	}
	ideal := keys / len(members)
	for s, c := range counts {
		if c < ideal/2 || c > ideal*2 {
			t.Fatalf("shard %s owns %d of %d keys (ideal %d): imbalance beyond 2x", s, c, keys, ideal)
		}
	}
	t.Log(fmt.Sprint(counts))
}

// TestRingFailoverTargets pins the warm-standby assignment: every key a
// shard owns re-routes, after that shard leaves, to one of its published
// FailoverTargets — so replicating toward exactly that list is sufficient
// for a fully-warm failover. Also pins determinism and self-exclusion.
func TestRingFailoverTargets(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	r := NewRing(ids, 0)
	for _, id := range ids {
		targets := r.FailoverTargets(id)
		if len(targets) == 0 {
			t.Fatalf("%s has no failover targets in a 4-ring", id)
		}
		set := map[string]bool{}
		for _, tgt := range targets {
			if tgt == id {
				t.Fatalf("%s lists itself as its own failover target", id)
			}
			if set[tgt] {
				t.Fatalf("%s lists %s twice", id, tgt)
			}
			set[tgt] = true
		}
		// The sufficiency property: keys owned by id land on a listed
		// target once id is gone.
		without := r.Without(map[string]bool{id: true})
		for fp := uint64(0); fp < 4096; fp++ {
			k := fp * 0x9e3779b97f4a7c15 // spread probes around the ring
			if r.Lookup(k) != id {
				continue
			}
			if inheritor := without.Lookup(k); !set[inheritor] {
				t.Fatalf("key %#x owned by %s re-routes to %s, not in published targets %v",
					k, id, inheritor, targets)
			}
		}
		// Determinism: same membership, same answer, every time.
		again := NewRing(ids, 0).FailoverTargets(id)
		if fmt.Sprint(again) != fmt.Sprint(targets) {
			t.Fatalf("FailoverTargets(%s) unstable: %v vs %v", id, targets, again)
		}
	}
	// A 1-ring has nowhere to fail over to.
	if got := NewRing([]string{"solo"}, 0).FailoverTargets("solo"); len(got) != 0 {
		t.Fatalf("solo ring published failover targets %v", got)
	}
}
