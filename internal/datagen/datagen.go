// Package datagen produces small random databases for property-based and
// differential testing. Value domains are deliberately tiny so that joins
// match, groups collide, duplicates occur, and NULLs appear — the situations
// that distinguish bag semantics from set semantics.
//
// Generation respects every constraint the schema declares: rows violating
// the primary key or a (fully non-NULL) UNIQUE key are dropped, and
// foreign keys are closed over the generated set — FK tuples are drawn
// from the parent table's actual key rows, rows that cannot reference
// anything are NULLed out of the constraint or dropped. The refuter
// depends on this: a "counterexample" violating a declared constraint is
// no counterexample at all, because the equivalence only claims to hold on
// valid databases. FKs to tables outside the generated set stay
// unconstrained, which is sound — a table no query scans can always be
// extended to satisfy containment without changing any output.
package datagen

import (
	"math/big"
	"math/rand"
	"strings"

	"spes/internal/exec"
	"spes/internal/plan"
	"spes/internal/schema"
)

// Options tunes generation.
type Options struct {
	// MaxRows bounds rows per table (default 6).
	MaxRows int
	// NullProb is the probability of NULL in a nullable column
	// (default 0.2).
	NullProb float64
	// IntRange bounds integer magnitudes; values are drawn from
	// [lo, lo+IntRange) around the paper's predicate constants
	// (default 16, lo = 0 — covering thresholds like 10 and 15).
	IntRange int
}

func (o Options) maxRows() int {
	if o.MaxRows > 0 {
		return o.MaxRows
	}
	return 6
}

func (o Options) nullProb() float64 {
	if o.NullProb > 0 {
		return o.NullProb
	}
	return 0.2
}

func (o Options) intRange() int {
	if o.IntRange > 0 {
		return o.IntRange
	}
	return 16
}

var stringPool = []string{"NY", "SF", "LA", "CHI", "SEA"}

// Generator owns a private *rand.Rand, so every search that needs random
// databases seeds its own stream instead of sharing math/rand's global
// source. Two generators with the same seed produce identical databases in
// identical order no matter how many other goroutines are generating
// concurrently — the property the engine's parallel refutation searches
// rely on for deterministic, race-free witnesses. A Generator is NOT safe
// for concurrent use by multiple goroutines; give each search its own.
type Generator struct {
	r    *rand.Rand
	opts Options
}

// NewGenerator returns a generator with a private source seeded from seed.
func NewGenerator(seed int64, opts Options) *Generator {
	return &Generator{r: rand.New(rand.NewSource(seed)), opts: opts}
}

// Database generates one random database covering every catalog table.
func (g *Generator) Database(cat *schema.Catalog) exec.Database {
	return Random(cat, g.r, g.opts)
}

// ForTables generates one random database covering exactly the given table
// schemas. The refutation search collects these from the plans under test,
// so no catalog handle is needed.
func (g *Generator) ForTables(tables []*schema.Table) exec.Database {
	return generate(tables, g.r, g.opts)
}

// Random generates a database for every table in the catalog.
func Random(cat *schema.Catalog, r *rand.Rand, opts Options) exec.Database {
	tables := make([]*schema.Table, 0, len(cat.Names()))
	for _, name := range cat.Names() {
		tables = append(tables, cat.MustTable(name))
	}
	return generate(tables, r, opts)
}

// generate fills tables parents-first so that children can draw their FK
// tuples from already-materialized parent rows. For a constraint-free
// table set the order — and therefore the random stream — is identical to
// the pre-constraint generator, keeping seeded databases byte-stable.
func generate(tables []*schema.Table, r *rand.Rand, opts Options) exec.Database {
	byName := make(map[string]*schema.Table, len(tables))
	for _, t := range tables {
		byName[strings.ToUpper(t.Name)] = t
	}
	db := make(exec.Database)
	for _, t := range parentsFirst(tables, byName) {
		db[strings.ToUpper(t.Name)] = randomTable(t, db, byName, r, opts)
	}
	return db
}

// parentsFirst orders the tables so every FK parent inside the set
// precedes its children (DFS postorder on the FK edges; self-references
// are skipped and cycles break at the back edge, both falling back to the
// given order). With no FK edges the input order is returned unchanged.
func parentsFirst(tables []*schema.Table, byName map[string]*schema.Table) []*schema.Table {
	order := make([]*schema.Table, 0, len(tables))
	visited := make(map[string]bool, len(tables))
	stack := make(map[string]bool)
	var visit func(t *schema.Table)
	visit = func(t *schema.Table) {
		u := strings.ToUpper(t.Name)
		if visited[u] || stack[u] {
			return
		}
		stack[u] = true
		for _, fk := range t.ForeignKeys {
			pu := strings.ToUpper(fk.ParentTable)
			if pu == u {
				continue
			}
			if p := byName[pu]; p != nil {
				visit(p)
			}
		}
		stack[u] = false
		visited[u] = true
		order = append(order, t)
	}
	for _, t := range tables {
		visit(t)
	}
	return order
}

func randomTable(t *schema.Table, db exec.Database, byName map[string]*schema.Table, r *rand.Rand, opts Options) *exec.Table {
	n := r.Intn(opts.maxRows() + 1)
	var pkIdx []int
	for _, pk := range t.PrimaryKey {
		pkIdx = append(pkIdx, t.ColumnIndex(pk))
	}
	uniqIdx := make([][]int, 0, len(t.Unique))
	for _, u := range t.Unique {
		uniqIdx = append(uniqIdx, columnIdx(t, u))
	}
	out := &exec.Table{}
	seenPK := make(map[string]bool)
	seenUniq := make([]map[string]bool, len(uniqIdx))
	for i := range seenUniq {
		seenUniq[i] = make(map[string]bool)
	}
	for i := 0; i < n; i++ {
		row := make(exec.Row, len(t.Columns))
		for j, c := range t.Columns {
			row[j] = randomDatum(c, r, opts)
		}
		if !closeForeignKeys(t, row, out, db, byName, r) {
			continue // no parent row to reference and the FK cannot be NULLed
		}
		if len(pkIdx) > 0 {
			k := keyString(row, pkIdx)
			if seenPK[k] {
				continue // drop rows violating the primary key
			}
			seenPK[k] = true
		}
		// SQL UNIQUE only constrains fully non-NULL key tuples.
		uniqOK := true
		for ui, idx := range uniqIdx {
			if anyNull(row, idx) {
				continue
			}
			if seenUniq[ui][keyString(row, idx)] {
				uniqOK = false
				break
			}
		}
		if !uniqOK {
			continue
		}
		for ui, idx := range uniqIdx {
			if !anyNull(row, idx) {
				seenUniq[ui][keyString(row, idx)] = true
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// closeForeignKeys rewrites row's FK tuples to reference actual parent
// rows (MATCH SIMPLE: a tuple with any NULL component is exempt and left
// alone). It reports false when the row must be dropped: the parent has no
// rows and the FK columns cannot be NULLed. Self-referential FKs draw from
// the rows of t accepted so far. FKs whose parent is outside byName — not
// part of the generated set — are unconstrained.
func closeForeignKeys(t *schema.Table, row exec.Row, self *exec.Table, db exec.Database, byName map[string]*schema.Table, r *rand.Rand) bool {
	for _, fk := range t.ForeignKeys {
		pu := strings.ToUpper(fk.ParentTable)
		pt := byName[pu]
		if pt == nil {
			continue
		}
		cidx := columnIdx(t, fk.Columns)
		if anyNull(row, cidx) {
			continue // exempt under MATCH SIMPLE
		}
		var parentRows []exec.Row
		if pu == strings.ToUpper(t.Name) {
			parentRows = self.Rows
		} else if p, ok := db[pu]; ok {
			parentRows = p.Rows
		} else {
			continue
		}
		if len(parentRows) == 0 {
			// Nothing to reference: NULL one component to exempt the row,
			// or drop it when every component is NOT NULL.
			nulled := false
			for _, j := range cidx {
				if !t.Columns[j].NotNull {
					row[j] = plan.NullDatum()
					nulled = true
					break
				}
			}
			if !nulled {
				return false
			}
			continue
		}
		pick := parentRows[r.Intn(len(parentRows))]
		pidx := columnIdx(pt, fk.ParentColumns)
		for k := range cidx {
			row[cidx[k]] = pick[pidx[k]]
			// A NULL parent key component may not flow into a NOT NULL
			// child column.
			if row[cidx[k]].Null && t.Columns[cidx[k]].NotNull {
				return false
			}
		}
	}
	return true
}

func columnIdx(t *schema.Table, names []string) []int {
	idx := make([]int, len(names))
	for i, name := range names {
		idx[i] = t.ColumnIndex(name)
	}
	return idx
}

func anyNull(row exec.Row, idx []int) bool {
	for _, j := range idx {
		if row[j].Null {
			return true
		}
	}
	return false
}

func keyString(row exec.Row, idx []int) string {
	var kb strings.Builder
	for _, j := range idx {
		kb.WriteString(row[j].Key())
		kb.WriteByte('\x00')
	}
	return kb.String()
}

func randomDatum(c schema.Column, r *rand.Rand, opts Options) plan.Datum {
	if !c.NotNull && r.Float64() < opts.nullProb() {
		return plan.NullDatum()
	}
	switch c.Type {
	case schema.Int:
		return plan.IntDatum(int64(r.Intn(opts.intRange())))
	case schema.Float:
		// Halves keep arithmetic exact in the rational executor.
		return plan.NumDatum(big.NewRat(int64(r.Intn(2*opts.intRange())), 2))
	case schema.String:
		return plan.StrDatum(stringPool[r.Intn(len(stringPool))])
	case schema.Bool:
		return plan.BoolDatum(r.Intn(2) == 0)
	}
	return plan.NullDatum()
}
