// Package datagen produces small random databases for property-based and
// differential testing. Value domains are deliberately tiny so that joins
// match, groups collide, duplicates occur, and NULLs appear — the situations
// that distinguish bag semantics from set semantics.
package datagen

import (
	"math/big"
	"math/rand"
	"strings"

	"spes/internal/exec"
	"spes/internal/plan"
	"spes/internal/schema"
)

// Options tunes generation.
type Options struct {
	// MaxRows bounds rows per table (default 6).
	MaxRows int
	// NullProb is the probability of NULL in a nullable column
	// (default 0.2).
	NullProb float64
	// IntRange bounds integer magnitudes; values are drawn from
	// [lo, lo+IntRange) around the paper's predicate constants
	// (default 16, lo = 0 — covering thresholds like 10 and 15).
	IntRange int
}

func (o Options) maxRows() int {
	if o.MaxRows > 0 {
		return o.MaxRows
	}
	return 6
}

func (o Options) nullProb() float64 {
	if o.NullProb > 0 {
		return o.NullProb
	}
	return 0.2
}

func (o Options) intRange() int {
	if o.IntRange > 0 {
		return o.IntRange
	}
	return 16
}

var stringPool = []string{"NY", "SF", "LA", "CHI", "SEA"}

// Generator owns a private *rand.Rand, so every search that needs random
// databases seeds its own stream instead of sharing math/rand's global
// source. Two generators with the same seed produce identical databases in
// identical order no matter how many other goroutines are generating
// concurrently — the property the engine's parallel refutation searches
// rely on for deterministic, race-free witnesses. A Generator is NOT safe
// for concurrent use by multiple goroutines; give each search its own.
type Generator struct {
	r    *rand.Rand
	opts Options
}

// NewGenerator returns a generator with a private source seeded from seed.
func NewGenerator(seed int64, opts Options) *Generator {
	return &Generator{r: rand.New(rand.NewSource(seed)), opts: opts}
}

// Database generates one random database covering every catalog table.
func (g *Generator) Database(cat *schema.Catalog) exec.Database {
	return Random(cat, g.r, g.opts)
}

// ForTables generates one random database covering exactly the given table
// schemas. The refutation search collects these from the plans under test,
// so no catalog handle is needed.
func (g *Generator) ForTables(tables []*schema.Table) exec.Database {
	db := make(exec.Database)
	for _, t := range tables {
		db[strings.ToUpper(t.Name)] = randomTable(t, g.r, g.opts)
	}
	return db
}

// Random generates a database for every table in the catalog.
func Random(cat *schema.Catalog, r *rand.Rand, opts Options) exec.Database {
	db := make(exec.Database)
	for _, name := range cat.Names() {
		t := cat.MustTable(name)
		db[strings.ToUpper(name)] = randomTable(t, r, opts)
	}
	return db
}

func randomTable(t *schema.Table, r *rand.Rand, opts Options) *exec.Table {
	n := r.Intn(opts.maxRows() + 1)
	var pkIdx []int
	for _, pk := range t.PrimaryKey {
		pkIdx = append(pkIdx, t.ColumnIndex(pk))
	}
	out := &exec.Table{}
	seenPK := make(map[string]bool)
	for i := 0; i < n; i++ {
		row := make(exec.Row, len(t.Columns))
		for j, c := range t.Columns {
			row[j] = randomDatum(c, r, opts)
		}
		if len(pkIdx) > 0 {
			var kb strings.Builder
			for _, j := range pkIdx {
				kb.WriteString(row[j].Key())
				kb.WriteByte('\x00')
			}
			if seenPK[kb.String()] {
				continue // drop rows violating the primary key
			}
			seenPK[kb.String()] = true
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func randomDatum(c schema.Column, r *rand.Rand, opts Options) plan.Datum {
	if !c.NotNull && r.Float64() < opts.nullProb() {
		return plan.NullDatum()
	}
	switch c.Type {
	case schema.Int:
		return plan.IntDatum(int64(r.Intn(opts.intRange())))
	case schema.Float:
		// Halves keep arithmetic exact in the rational executor.
		return plan.NumDatum(big.NewRat(int64(r.Intn(2*opts.intRange())), 2))
	case schema.String:
		return plan.StrDatum(stringPool[r.Intn(len(stringPool))])
	case schema.Bool:
		return plan.BoolDatum(r.Intn(2) == 0)
	}
	return plan.NullDatum()
}
