package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"spes/internal/schema"
)

func TestRandomRespectsSchema(t *testing.T) {
	cat := schema.NewCatalog()
	if err := cat.AddTable(&schema.Table{
		Name: "T",
		Columns: []schema.Column{
			{Name: "ID", Type: schema.Int, NotNull: true},
			{Name: "V", Type: schema.Int},
			{Name: "S", Type: schema.String},
			{Name: "B", Type: schema.Bool},
		},
		PrimaryKey: []string{"ID"},
	}); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		db := Random(cat, r, Options{})
		tbl, ok := db["T"]
		if !ok {
			t.Fatal("table T missing")
		}
		seen := map[string]bool{}
		for _, row := range tbl.Rows {
			if len(row) != 4 {
				t.Fatalf("row width %d", len(row))
			}
			if row[0].Null {
				t.Error("NOT NULL column generated NULL")
			}
			k := row[0].Key()
			if seen[k] {
				t.Error("primary key duplicated")
			}
			seen[k] = true
		}
	}
}

func TestRandomProducesNullsAndDuplicateValues(t *testing.T) {
	cat := schema.NewCatalog()
	if err := cat.AddTable(&schema.Table{
		Name: "U",
		Columns: []schema.Column{
			{Name: "A", Type: schema.Int},
			{Name: "S", Type: schema.String},
		},
	}); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	nulls, rows := 0, 0
	valueCounts := map[string]int{}
	for iter := 0; iter < 200; iter++ {
		db := Random(cat, r, Options{MaxRows: 8})
		for _, row := range db["U"].Rows {
			rows++
			if row[0].Null {
				nulls++
			} else {
				valueCounts[row[0].Key()]++
			}
		}
	}
	if nulls == 0 {
		t.Error("generator never produced NULL")
	}
	dup := false
	for _, c := range valueCounts {
		if c > 1 {
			dup = true
		}
	}
	if !dup {
		t.Error("generator never produced duplicate values (bag semantics untestable)")
	}
	if rows == 0 {
		t.Error("generator produced no rows at all")
	}
}

func TestStringPoolOnly(t *testing.T) {
	cat := schema.NewCatalog()
	_ = cat.AddTable(&schema.Table{
		Name:    "S",
		Columns: []schema.Column{{Name: "X", Type: schema.String, NotNull: true}},
	})
	r := rand.New(rand.NewSource(3))
	db := Random(cat, r, Options{MaxRows: 20})
	for _, row := range db["S"].Rows {
		if !strings.Contains(strings.Join(stringPool, ","), row[0].Str) {
			t.Errorf("unexpected string %q", row[0].Str)
		}
	}
}
