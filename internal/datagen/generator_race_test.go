package datagen

import (
	"sync"
	"testing"

	"spes/internal/exec"
	"spes/internal/schema"
)

func raceCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	if err := cat.AddTable(&schema.Table{
		Name: "T",
		Columns: []schema.Column{
			{Name: "ID", Type: schema.Int, NotNull: true},
			{Name: "V", Type: schema.Int},
			{Name: "S", Type: schema.String},
			{Name: "B", Type: schema.Bool},
		},
		PrimaryKey: []string{"ID"},
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestGeneratorDeterministicUnderConcurrency is the -race regression test
// for the seeded-generator bugfix: witness searches inside the engine's
// worker pool each own a Generator, so concurrent searches must neither
// race (the global math/rand source is never touched) nor perturb each
// other's streams. Every goroutine seeds its own Generator with the same
// seed and must reproduce the exact database sequence a lone generator
// produces.
func TestGeneratorDeterministicUnderConcurrency(t *testing.T) {
	cat := raceCatalog(t)
	const seed, rounds, workers = 42, 32, 8

	want := make([]string, rounds)
	ref := NewGenerator(seed, Options{MaxRows: 5})
	for i := range want {
		want[i] = dumpDB(ref.Database(cat))
	}

	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := NewGenerator(seed, Options{MaxRows: 5})
			for i := 0; i < rounds; i++ {
				if got := dumpDB(g.Database(cat)); got != want[i] {
					errs <- got
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for range errs {
		t.Fatal("concurrent generators diverged from the single-threaded stream")
	}
}

// TestGeneratorForTablesMatchesCatalog pins that ForTables (the
// refutation-search entry point, which has plan table metas but no
// catalog) draws from the same stream as Database.
func TestGeneratorForTablesMatchesCatalog(t *testing.T) {
	cat := raceCatalog(t)
	a := NewGenerator(7, Options{MaxRows: 5})
	b := NewGenerator(7, Options{MaxRows: 5})
	tables := []*schema.Table{cat.MustTable("T")}
	for i := 0; i < 16; i++ {
		if dumpDB(a.Database(cat)) != dumpDB(b.ForTables(tables)) {
			t.Fatalf("round %d: ForTables diverged from Database for the same seed", i)
		}
	}
}

func dumpDB(db exec.Database) string {
	out := ""
	for name, tbl := range db {
		out += name + ":" + exec.FormatRows(tbl.Rows) + "\n"
	}
	return out
}
