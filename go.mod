module spes

go 1.22
