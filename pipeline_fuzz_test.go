package spes

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"spes/internal/datagen"
	"spes/internal/exec"
)

// Whole-pipeline fuzz: random structured queries over a wide feature mix
// (joins, outer joins, unions, grouping, DISTINCT, EXISTS, CASE) are paired
// arbitrarily and verified through the public API. Invariants:
//
//  1. the pipeline never panics on anything the parser accepts;
//  2. every Equivalent verdict survives differential execution on random
//     databases (Theorem 1, operationally);
//  3. a query is always proved equivalent to itself.

type fuzzGen struct{ r *rand.Rand }

func (g *fuzzGen) pred(cols []string) string {
	c := cols[g.r.Intn(len(cols))]
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("%s > %d", c, g.r.Intn(10))
	case 1:
		return fmt.Sprintf("%s = %d", c, g.r.Intn(10))
	case 2:
		return fmt.Sprintf("%s IS NOT NULL", c)
	case 3:
		return fmt.Sprintf("%s + %d <= %d", c, g.r.Intn(4), g.r.Intn(12))
	default:
		return fmt.Sprintf("%s IN (%d, %d)", c, g.r.Intn(6), g.r.Intn(6))
	}
}

func (g *fuzzGen) query(depth int) string {
	switch g.r.Intn(8) {
	case 0: // plain scan
		return fmt.Sprintf("SELECT EMP_ID, SALARY FROM EMP WHERE %s",
			g.pred([]string{"SALARY", "DEPT_ID", "EMP_ID"}))
	case 1: // join
		return fmt.Sprintf(
			"SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP, DEPT WHERE EMP.DEPT_ID = DEPT.DEPT_ID AND %s",
			g.pred([]string{"EMP.SALARY", "DEPT.BUDGET"}))
	case 2: // left join
		return fmt.Sprintf(
			"SELECT EMP.EMP_ID, DEPT.DEPT_NAME FROM EMP LEFT JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID WHERE %s",
			g.pred([]string{"EMP.SALARY"}))
	case 3: // aggregate
		return fmt.Sprintf(
			"SELECT LOCATION, %s FROM EMP WHERE %s GROUP BY LOCATION",
			[]string{"COUNT(*)", "SUM(SALARY)", "MIN(SALARY)", "MAX(SALARY)"}[g.r.Intn(4)],
			g.pred([]string{"SALARY", "DEPT_ID"}))
	case 4: // distinct
		return fmt.Sprintf("SELECT DISTINCT DEPT_ID FROM EMP WHERE %s",
			g.pred([]string{"SALARY"}))
	case 5: // union
		return fmt.Sprintf("SELECT DEPT_ID FROM EMP WHERE %s UNION ALL SELECT DEPT_ID FROM DEPT",
			g.pred([]string{"SALARY"}))
	case 6: // exists
		return fmt.Sprintf(
			"SELECT EMP_ID FROM EMP WHERE EXISTS (SELECT 1 FROM DEPT WHERE DEPT.DEPT_ID = EMP.DEPT_ID AND %s)",
			g.pred([]string{"DEPT.BUDGET"}))
	default: // nested derived table (recursion)
		if depth <= 0 {
			return "SELECT EMP_ID, SALARY FROM EMP"
		}
		inner := g.query(depth - 1)
		return fmt.Sprintf("SELECT * FROM (%s) T%d", inner, g.r.Intn(100))
	}
}

const fuzzDDL = `
CREATE TABLE EMP (
	EMP_ID INT NOT NULL PRIMARY KEY,
	SALARY INT,
	DEPT_ID INT,
	LOCATION VARCHAR(20)
);
CREATE TABLE DEPT (
	DEPT_ID INT NOT NULL PRIMARY KEY,
	DEPT_NAME VARCHAR(20),
	BUDGET INT
);
`

func TestPipelineFuzz(t *testing.T) {
	cat, err := ParseCatalog(fuzzDDL)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(314159))
	g := &fuzzGen{r: r}
	iterations := 200
	if testing.Short() {
		iterations = 40
	}
	proved := 0
	for iter := 0; iter < iterations; iter++ {
		sql1 := g.query(2)
		sql2 := g.query(2)
		// Self-equivalence must always hold.
		self, err := Verify(cat, sql1, sql1)
		if err != nil {
			t.Fatalf("self verify error for %q: %v", sql1, err)
		}
		if self.Verdict != Equivalent {
			t.Fatalf("query not proved equivalent to itself: %s", sql1)
		}
		// Arbitrary pairs: never panic; verify soundly.
		res, err := Verify(cat, sql1, sql2)
		if err != nil {
			t.Fatalf("verify error:\n%s\n%s\n%v", sql1, sql2, err)
		}
		if res.Verdict != Equivalent {
			continue
		}
		proved++
		q1, err := BuildPlan(cat, sql1)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := BuildPlan(cat, sql2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			db := datagen.Random(cat, r, datagen.Options{MaxRows: 5})
			r1, err1 := exec.Run(db, q1)
			r2, err2 := exec.Run(db, q2)
			if err1 != nil || err2 != nil {
				t.Fatalf("exec error: %v / %v", err1, err2)
			}
			if !exec.BagEqual(r1, r2) {
				t.Fatalf("SOUNDNESS VIOLATION on fuzzed pair:\n%s\n%s\nout1:\n%s\nout2:\n%s",
					sql1, sql2, exec.FormatRows(r1), exec.FormatRows(r2))
			}
		}
	}
	t.Logf("%d/%d arbitrary pairs proved equivalent (coincidental matches)", proved, iterations)
}

// TestPipelineFuzzWideSchemas drives the pipeline over several generated
// schemas to exercise name resolution and NOT NULL propagation broadly.
func TestPipelineFuzzWideSchemas(t *testing.T) {
	r := rand.New(rand.NewSource(2718))
	for s := 0; s < 10; s++ {
		nCols := 2 + r.Intn(5)
		var cols []string
		var names []string
		for c := 0; c < nCols; c++ {
			name := fmt.Sprintf("C%d", c)
			decl := name + " INT"
			if r.Intn(3) == 0 {
				decl += " NOT NULL"
			}
			cols = append(cols, decl)
			names = append(names, name)
		}
		ddl := fmt.Sprintf("CREATE TABLE T (%s, PRIMARY KEY (C0))", strings.Join(cols, ", "))
		cat, err := ParseCatalog(ddl)
		if err != nil {
			t.Fatalf("schema %d: %v", s, err)
		}
		for q := 0; q < 10; q++ {
			a := names[r.Intn(len(names))]
			b := names[r.Intn(len(names))]
			sql := fmt.Sprintf("SELECT %s FROM T WHERE %s >= %d GROUP BY %s", a, b, r.Intn(5), a)
			res, err := Verify(cat, sql, sql)
			if err != nil || res.Verdict != Equivalent {
				t.Fatalf("schema %d query %q: verdict=%v err=%v", s, sql, res.Verdict, err)
			}
		}
	}
}
